"""Fault policies, deterministic fault injection, and retry machinery.

The paper's production frameworks all survive worker loss: Spark
re-runs the tasks of a lost executor, Dask replays the graph upstream of
a dead worker, and RADICAL-Pilot late-binds units so a failed unit can
simply be rescheduled.  This module gives the reproduction the same
property at the same granularity — the task — and ships the test
infrastructure to prove it:

* :class:`FaultPolicy` says *what to do* when a task fails: how many
  times to retry, which exceptions count as transient, how long to back
  off (deterministically), how stale a worker heartbeat may go before
  the driver declares the worker hung, and what to do about lost data
  blocks.  Threaded through :class:`~repro.frameworks.base.TaskFramework`,
  every substrate, and every executor.
* :class:`FaultSpec` / :class:`FaultInjector` are the deterministic
  chaos side: *kill the worker running the k-th task*, *raise inside
  the k-th kernel*, *unlink a spilled block when the k-th task is
  dispatched*, *delay the k-th task*.  The injector is consumed
  driver-side at dispatch time, so a retried task never re-triggers its
  fault and a fault-free re-run of the same workload is bit-identical.
* :class:`RetryingCall` is the in-process retry wrapper used by the
  substrates whose tasks do not run on the shared executor layer
  (dasklite's graph scheduler, mpilite's rank threads); the executors
  implement the same loop natively, including real process-pool
  recovery (see :mod:`repro.frameworks.executors`).

Failure taxonomy
----------------
``WorkerLost``
    the process (or simulated worker) executing a task died; always
    retryable within ``max_retries``.
``BlockLost`` (from :mod:`repro.frameworks.shm`)
    a :class:`~repro.frameworks.shm.BlockRef` resolves through no tier.
    For task-payload blocks the store can usually *heal* the block from
    its registered source array; for result blocks the task is
    re-executed.  Governed by ``FaultPolicy.on_lost_block``.
``InjectedFault``
    the exception raised by ``kind="raise"`` faults; retryable like any
    ``retry_on`` match.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .shm import (
    BlockLost,
    SharedMemoryStore,
    resident_names,
    unlink_segment_by_name,
)

__all__ = [
    "FAULT_KINDS",
    "InjectedFault",
    "WorkerLost",
    "BlockLost",
    "FaultPolicy",
    "NO_RETRIES",
    "DEFAULT_POLICY",
    "FaultSpec",
    "FaultInjector",
    "FaultCounters",
    "RetryingCall",
    "as_injector",
    "apply_block_fault",
    "execute_worker_fault",
    "simulate_in_process_fault",
    "live_heartbeat_pids",
    "reap_dead_heartbeats",
    "kill_heartbeat_workers",
    "RESIDENT_PREFIX",
    "report_resident_set",
    "read_resident_set",
]

#: Fault kinds understood by :class:`FaultSpec`.
FAULT_KINDS = ("kill_worker", "raise", "delay", "unlink_block", "corrupt_block")

#: Kinds applied driver-side to the data plane rather than inside a task.
_BLOCK_KINDS = ("unlink_block", "corrupt_block")


class InjectedFault(RuntimeError):
    """The exception a ``kind="raise"`` fault throws inside a task."""


class WorkerLost(RuntimeError):
    """A worker died (or was declared hung) while executing a task.

    Raised driver-side when a process pool breaks or a heartbeat goes
    stale, and in-process when a ``kill_worker`` fault is simulated on
    an executor that shares the driver's address space.  Always
    retryable within :attr:`FaultPolicy.max_retries`.
    """


@dataclass(frozen=True)
class FaultPolicy:
    """What the frameworks do when a task fails.

    Parameters
    ----------
    max_retries : int, optional
        Times a single task may be re-executed after a failure (default
        2).  0 restores fail-fast behaviour.
    retry_on : tuple of exception types, optional
        In-task exceptions considered transient.  Worker death
        (:class:`WorkerLost`) is always retryable regardless, and lost
        blocks (:class:`~repro.frameworks.shm.BlockLost`) are governed
        by ``on_lost_block``.
    backoff_s : float, optional
        Deterministic pause before the first retry of a task; the n-th
        retry waits ``backoff_s * backoff_factor**n``.  Default 0 (no
        pause): local substrates recover by re-executing, not by
        waiting out an external service.
    backoff_factor : float, optional
        Multiplier between successive backoffs (default 2.0).
    heartbeat_timeout_s : float, optional
        Process pools only: a worker whose current task started more
        than this many seconds ago without completing is declared hung
        and killed, which surfaces as :class:`WorkerLost` and triggers
        the normal resubmission path.  ``None`` (default) disables the
        monitor.
    heartbeat_interval_s : float, optional
        How often the driver checks heartbeats while waiting on task
        completions (default 0.05 s).
    on_lost_block : str, optional
        ``"recover"`` (default): heal an unresolvable task-payload block
        from its registered source array and retry, or re-execute the
        producing task for an unresolvable result block — both count
        into ``tasks_lost``.  ``"raise"``: propagate the
        :class:`~repro.frameworks.shm.BlockLost` immediately.
    speculation_factor : float, optional
        Straggler mitigation: a task still running after
        ``speculation_factor * median(completed task durations)``
        (floored at one ``heartbeat_interval_s``) gets a duplicate
        attempt launched on a free worker.  First result wins; the
        loser is discarded (and its worker SIGKILLed if it never
        returns), counted into ``tasks_speculated`` /
        ``speculation_wins``.  ``None`` (default) disables speculation.
        In-process executors, where a straggler cannot be raced for
        real, treat an injected ``"delay"`` fault on a speculative
        policy as a straggler whose duplicate wins immediately — the
        deterministic simulation the chaos suite asserts against.
    checkpoint_interval_tasks : int, optional
        When a :class:`~repro.frameworks.checkpoint.RunJournal` is
        active, journal every n-th completed task per worker process
        (default 1: every completion is durable).  Larger intervals
        trade re-execution after a crash for journal write traffic.
    locality : bool, optional
        Process pools on the shm plane only: opt into locality-aware
        task placement (default ``False``).  Workers report the block
        names they hold resident alongside their heartbeat files, and
        the driver routes each task to a free worker whose resident set
        covers the task's refs — steering tasks whose inputs spilled to
        the worker that still has them mapped instead of paying a disk
        read on a random one.  Placement is accounted in
        ``tasks_local`` / ``tasks_remote`` and the disk reads steered
        around in ``bytes_spill_reads_avoided``.  Executors without a
        routable pool (or without refs to score) ignore the flag.
    locality_wait_s : float, optional
        Delay-scheduling bound (default 0.05 s): how long a pending
        task may hold out for a busy worker with affinity before any
        free worker is allowed to steal it.  Affinity must never idle
        the pool — past the bound, work-stealing wins.
    """

    max_retries: int = 2
    retry_on: Tuple[type, ...] = (Exception,)
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    heartbeat_timeout_s: Optional[float] = None
    heartbeat_interval_s: float = 0.05
    on_lost_block: str = "recover"
    speculation_factor: Optional[float] = None
    checkpoint_interval_tasks: int = 1
    locality: bool = False
    locality_wait_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.heartbeat_timeout_s is not None and self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.on_lost_block not in ("recover", "raise"):
            raise ValueError("on_lost_block must be 'recover' or 'raise'")
        if self.speculation_factor is not None and self.speculation_factor <= 0:
            raise ValueError("speculation_factor must be positive")
        if self.checkpoint_interval_tasks < 1:
            raise ValueError("checkpoint_interval_tasks must be >= 1")
        if self.locality_wait_s < 0:
            raise ValueError("locality_wait_s must be non-negative")

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether a task that failed with ``exc`` on ``attempt`` may rerun.

        Parameters
        ----------
        exc : BaseException
            The failure.
        attempt : int
            0-based attempt number that failed.

        Returns
        -------
        bool
            ``True`` when the policy allows re-executing the task.
        """
        if attempt >= self.max_retries:
            return False
        if isinstance(exc, WorkerLost):
            return True
        if isinstance(exc, BlockLost):
            return self.on_lost_block == "recover"
        return isinstance(exc, self.retry_on)

    def backoff_for(self, attempt: int) -> float:
        """Deterministic pause before retrying after failed ``attempt``."""
        if self.backoff_s == 0.0:
            return 0.0
        return self.backoff_s * self.backoff_factor ** attempt


#: Fail-fast policy: the pre-resilience behaviour of every substrate.
NO_RETRIES = FaultPolicy(max_retries=0)

#: The policy a caller gets by asking for fault tolerance without tuning.
DEFAULT_POLICY = FaultPolicy()


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: what happens, and at which task.

    ``at_task`` counts *first-attempt* task dispatches in driver
    dispatch order, so a spec fires exactly once per run and a retried
    task can never re-trigger it — the property that makes chaos runs
    reproducible and lets the suite assert exact retry counts.

    Parameters
    ----------
    kind : str
        One of :data:`FAULT_KINDS`:

        ``"kill_worker"``
            SIGKILL the worker process executing the task (process
            pools), or raise :class:`WorkerLost` at the dispatch point
            (in-process executors, where killing the worker would kill
            the driver).
        ``"raise"``
            Raise :class:`InjectedFault` inside the task.
        ``"delay"``
            Sleep ``delay_s`` inside the task before running it (drives
            the heartbeat monitor).
        ``"unlink_block"``
            ``target="spill"``: unlink the oldest spilled ``.blk`` file
            of the run's store at dispatch time.  ``target="result"``:
            unlink the task's published result segments after the
            worker returns but before the driver adopts them — the
            crashed-before-handoff window.
        ``"corrupt_block"``
            Truncate the oldest spilled ``.blk`` file to half its size
            (resolves fail exactly like an unlinked block).
    at_task : int, optional
        0-based index of the first-attempt dispatch the fault fires on.
    delay_s : float, optional
        Sleep for ``"delay"`` faults (default 0.5 s).
    when : str, optional
        ``"kill_worker"`` timing: ``"before"`` (default) kills before
        the task body runs; ``"after_publish"`` runs the task, publishes
        its result segments, then kills — orphaning pid-keyed segments
        for the sweep to reclaim.
    target : str, optional
        Block-fault target: ``"spill"`` (default) or ``"result"``.
    message : str, optional
        Message carried by the raised :class:`InjectedFault`.
    """

    kind: str
    at_task: int = 0
    delay_s: float = 0.5
    when: str = "before"
    target: str = "spill"
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.at_task < 0:
            raise ValueError("at_task must be non-negative")
        if self.when not in ("before", "after_publish"):
            raise ValueError("when must be 'before' or 'after_publish'")
        if self.target not in ("spill", "result"):
            raise ValueError("target must be 'spill' or 'result'")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    @property
    def is_block_fault(self) -> bool:
        """Whether this fault sabotages the data plane instead of a task."""
        return self.kind in _BLOCK_KINDS


class FaultInjector:
    """Deterministic, consume-on-fire fault source shared by one run.

    Executors and substrate wrappers call :meth:`claim` exactly once per
    *first-attempt* task dispatch, in dispatch order; a spec whose
    ``at_task`` matches the dispatch counter is removed from the pending
    set and returned for the dispatcher to execute.  Retried dispatches
    (``attempt > 0``) never advance the counter and never fire, so a
    recovered run continues fault-free.

    Thread-safe: dasklite's threaded scheduler and the thread executor
    claim concurrently.

    Parameters
    ----------
    *specs : FaultSpec
        The faults to inject, in any order.
    """

    def __init__(self, *specs: FaultSpec) -> None:
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"FaultInjector takes FaultSpec, got {type(spec)!r}")
        self._initial = tuple(specs)
        self._lock = threading.Lock()
        self._pending: List[FaultSpec] = list(specs)
        self._dispatches = 0
        self.fired: List[FaultSpec] = []

    def claim(self, attempt: int = 0) -> Optional[FaultSpec]:
        """Consume and return the fault for this dispatch, if any.

        Parameters
        ----------
        attempt : int, optional
            0-based attempt number of the dispatch.  Only first
            attempts advance the dispatch counter and can fire.

        Returns
        -------
        FaultSpec or None
            The fault to execute for this dispatch.
        """
        if attempt != 0:
            return None
        with self._lock:
            index = self._dispatches
            self._dispatches += 1
            for spec in self._pending:
                if spec.at_task == index:
                    self._pending.remove(spec)
                    self.fired.append(spec)
                    return spec
        return None

    def unclaim(self, spec: Optional[FaultSpec] = None) -> None:
        """Roll back the most recent :meth:`claim` (dispatch never happened).

        A dispatcher that claimed a fault but failed to start the task
        (e.g. ``pool.submit`` raised on an already-broken pool) calls
        this before requeueing the task, so the dispatch counter stays
        aligned with the tasks that actually ran and a claimed-but-
        unexecuted spec returns to the pending set — preserving the
        exactly-once injection contract.  Only valid immediately after
        the claim, from the same (serial) dispatch loop.

        Parameters
        ----------
        spec : FaultSpec, optional
            The spec the rolled-back claim returned, if any.
        """
        with self._lock:
            if self._dispatches > 0:
                self._dispatches -= 1
            if spec is not None:
                if self.fired and self.fired[-1] is spec:
                    self.fired.pop()
                self._pending.append(spec)

    @property
    def pending(self) -> Tuple[FaultSpec, ...]:
        """Faults that have not fired yet."""
        with self._lock:
            return tuple(self._pending)

    def reset(self) -> None:
        """Restore the initial specs and zero the dispatch counter."""
        with self._lock:
            self._pending = list(self._initial)
            self._dispatches = 0
            self.fired = []


def as_injector(faults: Any) -> Optional[FaultInjector]:
    """Coerce the ``faults`` option of a framework to a :class:`FaultInjector`.

    Accepts ``None``, an injector (returned as-is, so one injector can
    be shared across the stages of a run), a single :class:`FaultSpec`,
    or a sequence of specs.
    """
    if faults is None or isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultSpec):
        return FaultInjector(faults)
    return FaultInjector(*faults)


# --------------------------------------------------------------------------- #
# executing faults
# --------------------------------------------------------------------------- #
def execute_worker_fault(spec: FaultSpec) -> None:
    """Run a task-side fault inside a real pool worker (pre-task timing).

    ``kill_worker`` with ``when="before"`` SIGKILLs the worker here;
    ``when="after_publish"`` is handled by the worker shim after
    publishing.  Block faults are driver-side and ignored here.
    """
    if spec.kind == "kill_worker" and spec.when == "before":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.kind == "raise":
        raise InjectedFault(spec.message)
    elif spec.kind == "delay":
        time.sleep(spec.delay_s)


def simulate_in_process_fault(spec: FaultSpec) -> None:
    """Run a task-side fault on an executor sharing the driver's process.

    ``kill_worker`` cannot SIGKILL without taking the driver down, so it
    degrades to raising :class:`WorkerLost` — the same signal the
    driver-side recovery of a real pool produces, exercising the same
    retry/accounting path on every substrate.
    """
    if spec.kind == "kill_worker":
        raise WorkerLost(f"injected worker kill (simulated in-process) "
                         f"at task {spec.at_task}")
    if spec.kind == "raise":
        raise InjectedFault(spec.message)
    if spec.kind == "delay":
        time.sleep(spec.delay_s)


def apply_block_fault(spec: FaultSpec, store: Optional[SharedMemoryStore]) -> bool:
    """Sabotage the data plane per a driver-side block fault.

    ``target="spill"`` faults act on the oldest spilled ``.blk`` file in
    the store's spill directory (name order, so the choice is
    deterministic): ``unlink_block`` removes it, ``corrupt_block``
    truncates it to half.  ``target="result"`` faults are applied by the
    executor to the task's returned refs instead (see
    :func:`unlink_result_refs`).

    Parameters
    ----------
    spec : FaultSpec
        A block fault (others are ignored).
    store : SharedMemoryStore or None
        The run's store; without one (pickle plane) nothing fires.

    Returns
    -------
    bool
        Whether a block file was actually sabotaged.
    """
    if not spec.is_block_fault or spec.target != "spill":
        return False
    if store is None or store.spill_dir is None:
        return False
    store.flush_spill()  # the fault targets a *spilled* block, so settle first
    try:
        blocks = sorted(name for name in os.listdir(store.spill_dir)
                        if name.endswith(".blk"))
    except OSError:
        return False
    if not blocks:
        return False
    path = os.path.join(store.spill_dir, blocks[0])
    try:
        if spec.kind == "unlink_block":
            os.remove(path)
        else:
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(max(1, size // 2))
    except OSError:
        return False
    from .shm import _invalidate_mapping  # drop the driver's stale mapping
    _invalidate_mapping(path)
    return True


def unlink_result_refs(payload: Any) -> int:
    """Unlink the segments behind a published result payload's refs.

    The executor applies this for ``unlink_block`` faults with
    ``target="result"``, between receiving a task's refs and adopting
    them — simulating a result segment that vanished in the handoff
    window.  Returns the number of segments removed.
    """
    from .shm import BlockRef, _walk

    removed = 0

    def leaf(x: Any) -> Any:
        nonlocal removed
        if isinstance(x, BlockRef):
            removed += int(unlink_segment_by_name(x.segment))
        return x

    _walk(payload, leaf)
    return removed


# --------------------------------------------------------------------------- #
# counters and the in-process retry wrapper
# --------------------------------------------------------------------------- #
@dataclass
class FaultCounters:
    """Thread-safe resilience counters for one ``map_tasks`` operation.

    Attributes
    ----------
    tasks_retried : int
        Task re-executions performed (every retry counts once).
    tasks_lost : int
        Failures attributed to lost workers or lost blocks (each lost
        event counts once; the matching re-execution also appears in
        ``tasks_retried``).
    recovery_seconds : float
        Driver-observed time spent recovering: backoff pauses, block
        healing, orphan sweeps, and process-pool rebuilds.
    tasks_speculated : int
        Speculative duplicate attempts launched against stragglers.
    speculation_wins : int
        Speculative duplicates whose result beat the original attempt.
    tasks_local : int
        Locality placements that covered every spilled input block.
    tasks_remote : int
        Locality placements that paid at least one cold spill read.
    bytes_spill_reads_avoided : int
        Spilled bytes found resident on the chosen worker.
    prefetch_hints_dropped : int
        Prefetch hints discarded because the hint queue was full.
    """

    tasks_retried: int = 0
    tasks_lost: int = 0
    recovery_seconds: float = 0.0
    tasks_speculated: int = 0
    speculation_wins: int = 0
    tasks_local: int = 0
    tasks_remote: int = 0
    bytes_spill_reads_avoided: int = 0
    prefetch_hints_dropped: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, *, retried: int = 0, lost: int = 0,
               seconds: float = 0.0, speculated: int = 0,
               wins: int = 0, local: int = 0, remote: int = 0,
               bytes_avoided: int = 0, hints_dropped: int = 0) -> None:
        """Accumulate retry/loss/speculation/placement events."""
        with self._lock:
            self.tasks_retried += retried
            self.tasks_lost += lost
            self.recovery_seconds += seconds
            self.tasks_speculated += speculated
            self.speculation_wins += wins
            self.tasks_local += local
            self.tasks_remote += remote
            self.bytes_spill_reads_avoided += bytes_avoided
            self.prefetch_hints_dropped += hints_dropped

    def reset(self) -> None:
        """Zero the counters (start of a new operation)."""
        with self._lock:
            self.tasks_retried = 0
            self.tasks_lost = 0
            self.recovery_seconds = 0.0
            self.tasks_speculated = 0
            self.speculation_wins = 0
            self.tasks_local = 0
            self.tasks_remote = 0
            self.bytes_spill_reads_avoided = 0
            self.prefetch_hints_dropped = 0


class RetryingCall:
    """Per-task retry loop for substrates that run tasks in-process.

    dasklite's graph scheduler and mpilite's rank threads execute tasks
    on their own machinery rather than on the shared executor layer, so
    the framework wraps the task function with this callable: each
    invocation claims its fault from the injector (first attempts only),
    simulates task-side faults, applies block faults to the store, and
    re-executes per the policy — healing lost payload blocks from their
    registered sources on the way.

    Parameters
    ----------
    fn : callable
        The task function.
    policy : FaultPolicy
        Retry policy.
    injector : FaultInjector, optional
        Deterministic fault source.
    counters : FaultCounters, optional
        Where retry/loss events are recorded (the framework folds these
        into :class:`~repro.frameworks.base.RunMetrics`).
    store : SharedMemoryStore, optional
        The run's store, for block faults and lost-block healing.
    """

    def __init__(self, fn: Callable[[Any], Any], policy: FaultPolicy,
                 injector: Optional[FaultInjector] = None,
                 counters: Optional[FaultCounters] = None,
                 store: Optional[SharedMemoryStore] = None) -> None:
        self.fn = fn
        self.policy = policy
        self.injector = injector
        self.counters = counters or FaultCounters()
        self.store = store

    def __call__(self, item: Any) -> Any:
        """Run the task, retrying per the policy; the task's result."""
        attempt = 0
        while True:
            spec = self.injector.claim(attempt) if self.injector else None
            try:
                if spec is not None:
                    if spec.is_block_fault:
                        apply_block_fault(spec, self.store)
                    elif (spec.kind == "delay"
                          and self.policy.speculation_factor is not None):
                        # in-process straggler simulation: the duplicate
                        # attempt wins immediately instead of sleeping
                        self.counters.record(speculated=1, wins=1)
                    else:
                        simulate_in_process_fault(spec)
                return self.fn(item)
            except Exception as exc:  # noqa: BLE001 - the policy decides
                if not self.policy.should_retry(exc, attempt):
                    raise
                recover_start = time.perf_counter()
                lost = isinstance(exc, (WorkerLost, BlockLost))
                if isinstance(exc, BlockLost) and self.store is not None:
                    self.store.recover_spilled_block(exc.segment)
                pause = self.policy.backoff_for(attempt)
                if pause:
                    time.sleep(pause)
                attempt += 1
                self.counters.record(retried=1, lost=int(lost),
                                     seconds=time.perf_counter() - recover_start)


# --------------------------------------------------------------------------- #
# heartbeat files (process pools)
# --------------------------------------------------------------------------- #
def _process_start_ticks(pid: int) -> Optional[int]:
    """Kernel start time (clock ticks since boot) of ``pid``, or ``None``.

    Field 22 of ``/proc/<pid>/stat`` uniquely identifies one incarnation
    of a pid: a recycled pid gets a new start time.  Parsed from after
    the last ``)`` so executable names containing spaces or parentheses
    cannot shift the field offsets.  ``None`` on platforms without
    procfs (the heartbeat machinery then falls back to liveness-only
    checks, the pre-fix behaviour).
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            data = fh.read()
        fields = data.rsplit(b")", 1)[1].split()
        return int(fields[19])  # field 22, counting from the state field
    except (OSError, IndexError, ValueError):
        return None


def write_heartbeat(hb_dir: Optional[str]) -> None:
    """Stamp this worker's heartbeat file at task start (worker side).

    The file is named after the worker's pid and records the wall-clock
    stamp plus the process *start time* (see :func:`_process_start_ticks`),
    so the driver can tell this incarnation of the pid from an unrelated
    process that recycled it after the worker died.
    """
    if not hb_dir:
        return
    try:
        ticks = _process_start_ticks(os.getpid())
        path = os.path.join(hb_dir, str(os.getpid()))
        with open(path, "w") as fh:
            fh.write(f"{time.time()!r} {'-' if ticks is None else ticks}")
    except OSError:
        pass


def clear_heartbeat(hb_dir: Optional[str]) -> None:
    """Remove this worker's heartbeat file at task end (worker side)."""
    if not hb_dir:
        return
    try:
        os.remove(os.path.join(hb_dir, str(os.getpid())))
    except OSError:
        pass


#: Filename prefix of per-worker resident-set files in the heartbeat
#: directory.  ``_heartbeat_entries`` only parses integer-named files,
#: so resident-set files are invisible to the pid machinery by
#: construction.
RESIDENT_PREFIX = "res-"


def _resident_set_path(hb_dir: str, pid: int) -> str:
    """Path of the resident-set file worker ``pid`` reports into."""
    return os.path.join(hb_dir, f"{RESIDENT_PREFIX}{pid}")


def report_resident_set(hb_dir: Optional[str]) -> None:
    """Write this worker's resident block names next to its heartbeat file.

    Called by the pool worker shims at the end of each task, piggybacking
    on the heartbeat directory: the file ``res-<pid>`` lists (one per
    line) the segment names the worker can resolve without a cold disk
    read — see :func:`~repro.frameworks.shm.resident_names`.  The driver
    reads it back to refresh the worker's lane for locality-aware
    placement.  Written to a temp name and renamed, so the driver never
    observes a half-written report; best-effort like the heartbeat
    itself.
    """
    if not hb_dir:
        return
    path = _resident_set_path(hb_dir, os.getpid())
    try:
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write("\n".join(sorted(resident_names())))
        os.replace(tmp, path)
    except OSError:
        pass


def read_resident_set(hb_dir: str, pid: int) -> Optional[frozenset]:
    """The block names worker ``pid`` last reported resident, if any.

    Returns ``None`` when the worker has not reported yet (its lane
    keeps the driver's optimistic estimate); an empty report reads as an
    empty frozenset.
    """
    try:
        with open(_resident_set_path(hb_dir, pid)) as fh:
            data = fh.read()
    except OSError:
        return None
    return frozenset(name for name in data.split("\n") if name)


def _heartbeat_ticks(path: str) -> Optional[int]:
    """Process start-ticks recorded in a heartbeat file, or ``None``."""
    try:
        with open(path) as fh:
            parts = fh.read().split()
        return int(parts[1])
    except (OSError, IndexError, ValueError):
        return None


def _heartbeat_entries(hb_dir: str) -> List[Tuple[int, str]]:
    """``(pid, path)`` pairs for the heartbeat files currently in ``hb_dir``."""
    try:
        entries = os.listdir(hb_dir)
    except OSError:
        return []
    out: List[Tuple[int, str]] = []
    for entry in entries:
        try:
            pid = int(entry)
        except ValueError:
            continue
        out.append((pid, os.path.join(hb_dir, entry)))
    return out


def _verify_heartbeat_owner(pid: int, path: str) -> bool:
    """Whether ``pid`` is alive *and* still the process that wrote ``path``.

    Guards against pid reuse: if the pid's current start time differs
    from the one recorded in the heartbeat file, the worker died and an
    unrelated process recycled its pid — the file is removed and the pid
    must never be signalled.  Dead pids also get their file removed
    (their loss surfaces through the broken pool instead).
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        try:
            os.remove(path)
        except OSError:
            pass
        return False
    except PermissionError:
        # alive but not ours — certainly not a pool worker we spawned
        return False
    recorded = _heartbeat_ticks(path)
    current = _process_start_ticks(pid)
    if recorded is not None and current is not None and recorded != current:
        try:
            os.remove(path)
        except OSError:
            pass
        return False
    return True


def stale_worker_pids(hb_dir: str, timeout_s: float) -> List[int]:
    """Pids whose current task started more than ``timeout_s`` ago.

    A heartbeat file exists exactly while its worker executes a task
    (written at task start, removed at completion), so a file older than
    the timeout marks a hung worker.  Files of already-dead pids are
    removed rather than reported — their loss surfaces through the
    broken pool instead — and a pid recycled by an unrelated process
    (detected via the recorded process start time) is likewise removed,
    never reported, so it can never be SIGKILLed by mistake.
    """
    stale: List[int] = []
    now = time.time()
    for pid, path in _heartbeat_entries(hb_dir):
        try:
            age = now - os.path.getmtime(path)
        except OSError:
            continue
        if age <= timeout_s:
            continue
        if not _verify_heartbeat_owner(pid, path):
            continue
        stale.append(pid)
    return stale


def live_heartbeat_pids(hb_dir: str) -> List[int]:
    """Pids with a heartbeat file that verifiably still belongs to them.

    Unlike :func:`stale_worker_pids` there is no age threshold: every
    worker currently mid-task is returned.  The speculation path uses
    this to reap straggler workers whose duplicate already won.
    """
    return [pid for pid, path in _heartbeat_entries(hb_dir)
            if _verify_heartbeat_owner(pid, path)]


def reap_dead_heartbeats(hb_dir: str) -> List[str]:
    """Remove heartbeat files of dead or recycled pids; the pids kept.

    Called after pool recovery so a SIGKILLed worker (whose ``finally``
    never ran) does not leave its heartbeat file behind — the hygiene
    invariant that ``hb_dir`` is empty after a successful run.  Dead
    workers' resident-set files (``res-<pid>``) are reaped in the same
    pass: a reaped lane's resident set must never route another task.
    """
    kept: List[str] = []
    for pid, path in _heartbeat_entries(hb_dir):
        if _verify_heartbeat_owner(pid, path):
            kept.append(str(pid))
    _reap_dead_resident_sets(hb_dir)
    return kept


def _reap_dead_resident_sets(hb_dir: str) -> None:
    """Drop resident-set files whose reporting worker is gone."""
    try:
        entries = os.listdir(hb_dir)
    except OSError:
        return
    for entry in entries:
        if not entry.startswith(RESIDENT_PREFIX):
            continue
        suffix = entry[len(RESIDENT_PREFIX):]
        alive = False
        try:
            os.kill(int(suffix), 0)
            alive = True
        except (ValueError, ProcessLookupError):
            alive = False  # malformed name, a ".tmp" leftover, or dead pid
        except PermissionError:
            alive = False  # pid recycled by a foreign process: not our worker
        if not alive:
            try:
                os.remove(os.path.join(hb_dir, entry))
            except OSError:
                pass


def kill_stale_workers(hb_dir: str, timeout_s: float) -> Sequence[int]:
    """SIGKILL workers whose heartbeat went stale; the pids killed.

    The kill breaks the process pool, which is exactly the point: the
    standard broken-pool recovery then reaps the worker, sweeps its
    orphans, rebuilds the pool and resubmits the lost task.
    """
    killed: List[int] = []
    for pid in stale_worker_pids(hb_dir, timeout_s):
        try:
            os.kill(pid, signal.SIGKILL)
            killed.append(pid)
        except OSError:
            pass
    return killed


def kill_heartbeat_workers(hb_dir: str) -> Sequence[int]:
    """SIGKILL every worker currently mid-task; the pids killed.

    The speculation path calls this when all results are in but a
    beaten straggler still occupies a worker: the kill breaks the pool,
    whose standard recovery (orphan sweep, rebuild) then runs with no
    tasks left to resubmit.  Ownership is verified exactly as in
    :func:`stale_worker_pids`, so a recycled pid is never signalled.
    """
    killed: List[int] = []
    for pid in live_heartbeat_pids(hb_dir):
        try:
            os.kill(pid, signal.SIGKILL)
            killed.append(pid)
        except OSError:
            pass
    return killed
