"""Checkpoint/restart of whole runs at matrix-block granularity.

A long fan-out analysis (PSA's distance blocks, the Leaflet Finder's
partial components) loses everything on a driver crash: PR 5's fault
layer re-executes *tasks* that fail, but a dead driver recomputes the
whole run.  This module adds the missing durability tier — a
:class:`RunJournal` that persists each completed task result to disk as
it happens, so a re-run with the same ``checkpoint_dir`` replays the
journal and submits only the missing blocks.

Design
------
* **Entries are written worker-side, before publish.**
  :class:`JournaledTask` wraps the task function; when a task completes,
  its result is encoded into a raw-bytes ``.blk`` file (the
  :class:`~repro.frameworks.shm.FileBackedStore` block format — the same
  bytes the spill tier writes) plus a JSON sidecar carrying the task
  key, per-part shape/dtype, and a sha256 checksum.  Both are written
  atomically (temp file + ``os.replace``); the sidecar lands *after*
  the block, so a crash mid-write leaves an incomplete entry that
  replay detects and discards — a corrupt or truncated entry is
  recomputed, never trusted.
* **The manifest makes staleness loud.**  ``MANIFEST.json`` records a
  fingerprint of the run's identity — input arrays (via
  :func:`~repro.frameworks.shm.array_digest`), data plane, substrate,
  kernel engine, decomposition.  Opening a journal whose fingerprint
  does not match raises :class:`StaleJournal`; a journal written for
  different inputs is *rejected*, never silently reused.
* **Replay is bit-exact.**  Entries store the raw result bytes, so a
  resumed run assembles the identical matrix an uninterrupted run
  produces, on every substrate and both data planes.

The journal state machine per entry::

    absent ──record()──► block written ──► sidecar written (durable)
       ▲                      │                   │
       │   crash mid-write    │                   │ checksum/shape
       └──── discarded ◄──────┘◄──────────────────┘ mismatch on replay

:func:`checkpointed_map` is the driver-side integration point used by
``run_psa`` / ``run_psa_windows`` / ``run_leaflet_finder``: restore the
journal, map only the missing items, splice restored and computed
results back into input order, and account ``tasks_restored`` /
``restore_seconds`` into the run's metrics.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from .shm import array_digest

__all__ = [
    "StaleJournal",
    "RunJournal",
    "JournaledTask",
    "checkpointed_map",
    "run_fingerprint",
    "record_entry",
]

#: Name of the atomic manifest file inside a journal directory.
MANIFEST_NAME = "MANIFEST.json"

#: On-disk journal format version; bumped on incompatible layout changes.
FORMAT_VERSION = 1


class StaleJournal(RuntimeError):
    """A journal directory belongs to a different run and must not be reused.

    Raised when the manifest's fingerprint (or format version) does not
    match the resuming run's.  The caller chooses what to do — point at
    a fresh directory or delete the stale one; the layer never guesses.
    """


def run_fingerprint(arrays: Sequence[Any] = (), **params: Any) -> str:
    """Fingerprint a run's identity from its input arrays and parameters.

    Parameters
    ----------
    arrays : sequence of array-like, optional
        The run's input data, digested by content
        (:func:`~repro.frameworks.shm.array_digest`), so the same
        trajectories produce the same fingerprint across processes.
    **params
        Everything else that shapes the output: data plane, substrate
        name, kernel engine, metric, decomposition.  Hashed by sorted
        ``repr``, so only stable scalar/str values belong here.

    Returns
    -------
    str
        Hex sha256 digest.
    """
    digest = hashlib.sha256()
    for array in arrays:
        digest.update(array_digest(np.asarray(array)).encode())
    for key in sorted(params):
        digest.update(f"{key}={params[key]!r};".encode())
    return digest.hexdigest()


def _entry_base(key: str) -> str:
    """Filesystem-safe entry basename for an arbitrary task key."""
    return "e-" + hashlib.sha256(key.encode()).hexdigest()[:24]


def _encode_value(value: Any):
    """Split a task result into ``(kind, part specs, payload bytes)``.

    Supports a single ndarray and (possibly empty) lists/tuples of
    ndarrays — the shapes PSA blocks and leaflet partial components
    come in.  Anything else is a :class:`TypeError` (the task type is
    not journalable).
    """
    if isinstance(value, np.ndarray):
        kind, parts = "array", [value]
    elif isinstance(value, (list, tuple)) and all(
            isinstance(part, np.ndarray) for part in value):
        kind = "list" if isinstance(value, list) else "tuple"
        parts = list(value)
    else:
        raise TypeError(f"cannot journal a result of type {type(value)!r}")
    blobs: List[bytes] = []
    specs: List[Dict[str, Any]] = []
    for part in parts:
        data = np.ascontiguousarray(part)
        blobs.append(data.tobytes())
        specs.append({"shape": list(data.shape), "dtype": data.dtype.str})
    return kind, specs, b"".join(blobs)


def record_entry(directory: str, key: str, value: Any) -> None:
    """Durably persist one completed task result (worker side).

    Block bytes first, sidecar second, each via atomic replace with a
    pid-unique temp name — concurrent workers recording the same key
    (a retried task) converge on identical bytes, and a crash at any
    point leaves either a complete entry or one replay will discard.
    """
    kind, specs, payload = _encode_value(value)
    base = _entry_base(key)
    nonce = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
    blk_path = os.path.join(directory, base + ".blk")
    tmp = blk_path + ".tmp-" + nonce
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, blk_path)
    meta = {"key": key, "kind": kind, "parts": specs,
            "checksum": hashlib.sha256(payload).hexdigest()}
    meta_path = os.path.join(directory, base + ".json")
    tmp = meta_path + ".tmp-" + nonce
    with open(tmp, "w") as fh:
        json.dump(meta, fh)
    os.replace(tmp, meta_path)


def _decode_entry(directory: str, meta: Dict[str, Any]) -> Any:
    """Rebuild a journaled result from its sidecar; raises on corruption."""
    base = _entry_base(meta["key"])
    with open(os.path.join(directory, base + ".blk"), "rb") as fh:
        payload = fh.read()
    if hashlib.sha256(payload).hexdigest() != meta["checksum"]:
        raise ValueError("journal entry checksum mismatch")
    parts: List[np.ndarray] = []
    offset = 0
    for spec in meta["parts"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(n) for n in spec["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if nbytes == 0:
            parts.append(np.empty(shape, dtype))
            continue
        chunk = payload[offset:offset + nbytes]
        if len(chunk) != nbytes:
            raise ValueError("journal entry shorter than its metadata")
        parts.append(np.frombuffer(chunk, dtype=dtype).reshape(shape).copy())
        offset += nbytes
    if offset != len(payload):
        raise ValueError("journal entry longer than its metadata")
    kind = meta["kind"]
    if kind == "array":
        return parts[0]
    return parts if kind == "list" else tuple(parts)


class RunJournal:
    """Durable record of one run's completed task results.

    Parameters
    ----------
    directory : str
        The ``checkpoint_dir``: created if missing, shared with nothing
        else.  Entry files use the spill tier's ``.blk`` raw-bytes
        format with a JSON sidecar each.
    fingerprint : str
        The run's identity (:func:`run_fingerprint`); checked against
        the directory's manifest by :meth:`open`.
    """

    def __init__(self, directory: str, fingerprint: str) -> None:
        self.directory = str(directory)
        self.fingerprint = fingerprint

    def open(self) -> "RunJournal":
        """Validate or create the manifest; raises :class:`StaleJournal`.

        A directory with a manifest written for a different run —
        different inputs, plane, substrate, kernel engine or format
        version — is rejected loudly.  An unreadable manifest counts as
        stale: the journal's provenance cannot be proven.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, MANIFEST_NAME)
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    manifest = json.load(fh)
            except (OSError, ValueError) as exc:
                raise StaleJournal(
                    f"unreadable journal manifest at {path}") from exc
            if (manifest.get("format") != FORMAT_VERSION
                    or manifest.get("fingerprint") != self.fingerprint):
                raise StaleJournal(
                    f"journal at {self.directory} was written for a different "
                    f"run (manifest fingerprint "
                    f"{manifest.get('fingerprint')!r}, this run "
                    f"{self.fingerprint!r}); refusing to reuse it")
        else:
            tmp = path + f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
            with open(tmp, "w") as fh:
                json.dump({"format": FORMAT_VERSION,
                           "fingerprint": self.fingerprint}, fh)
            os.replace(tmp, path)
        return self

    def record(self, key: str, value: Any) -> None:
        """Persist ``value`` under ``key`` (see :func:`record_entry`)."""
        record_entry(self.directory, key, value)

    def restore(self) -> Dict[str, Any]:
        """Replay every valid entry; ``{key: result}``.

        Entries that fail validation — missing block, checksum or shape
        mismatch, unparseable sidecar — are *removed* so the caller
        recomputes them; a journal can only under-promise.
        """
        entries: Dict[str, Any] = {}
        try:
            names = os.listdir(self.directory)
        except OSError:
            return entries
        for name in sorted(names):
            if not name.endswith(".json") or name == MANIFEST_NAME:
                continue
            try:
                with open(os.path.join(self.directory, name)) as fh:
                    meta = json.load(fh)
                entries[meta["key"]] = _decode_entry(self.directory, meta)
            except (OSError, KeyError, ValueError, TypeError):
                self._drop(name)
        return entries

    def _drop(self, sidecar_name: str) -> None:
        """Remove one invalid entry (sidecar + block)."""
        base = sidecar_name[:-len(".json")]
        for suffix in (".json", ".blk"):
            try:
                os.remove(os.path.join(self.directory, base + suffix))
            except OSError:
                pass

    @property
    def n_entries(self) -> int:
        """Number of entry sidecars currently on disk (valid or not)."""
        try:
            return sum(1 for name in os.listdir(self.directory)
                       if name.endswith(".json") and name != MANIFEST_NAME)
        except OSError:
            return 0


# --------------------------------------------------------------------------- #
# task wrapping and the driver-side integration point
# --------------------------------------------------------------------------- #
_interval_lock = threading.Lock()
_interval_counts: Dict[str, int] = {}


def _should_record(directory: str, interval: int) -> bool:
    """Per-process completion counter for ``checkpoint_interval_tasks``."""
    if interval <= 1:
        return True
    with _interval_lock:
        count = _interval_counts.get(directory, 0) + 1
        _interval_counts[directory] = count
    return count % interval == 0


class JournaledTask:
    """Picklable task wrapper: run the task, then journal its result.

    Recording happens in the executing process (pool workers included),
    *before* the result is published to the driver — so every completed
    task is durable even if the driver dies next.  Journaling is
    best-effort: an unwritable journal (disk full, unjournalable result
    type) degrades to an ordinary unjournaled run rather than failing
    the task.

    Parameters
    ----------
    fn : callable
        The task function.
    directory : str
        The journal directory.
    key_for : callable
        Maps a task item to its stable journal key; module-level (it
        crosses process boundaries by pickle).
    interval : int, optional
        Journal every ``interval``-th completion per process (the
        policy's ``checkpoint_interval_tasks``; default 1).
    """

    def __init__(self, fn: Callable[[Any], Any], directory: str,
                 key_for: Callable[[Any], str], interval: int = 1) -> None:
        self.fn = fn
        self.directory = directory
        self.key_for = key_for
        self.interval = max(1, int(interval))

    def __call__(self, item: Any) -> Any:
        """Run the task and journal the completed result."""
        result = self.fn(item)
        if _should_record(self.directory, self.interval):
            try:
                record_entry(self.directory, self.key_for(item), result)
            except (OSError, TypeError):
                pass
        return result


def checkpointed_map(framework: Any, fn: Callable[[Any], Any],
                     items: Sequence[Any], journal: RunJournal,
                     key_for: Callable[[Any], str]) -> List[Any]:
    """``framework.map_tasks`` with journal restore + record around it.

    Restores every valid journal entry, maps only the items whose key is
    missing (each completion journaled via :class:`JournaledTask`), and
    splices restored and computed results back into input order.
    ``tasks_restored`` / ``restore_seconds`` are added to the
    framework's metrics *after* ``map_tasks`` (which resets them).

    Parameters
    ----------
    framework : TaskFramework
        Any substrate; only the uniform ``map_tasks`` surface is used.
    fn : callable
        The task function.
    items : sequence
        Task items, in output order.
    journal : RunJournal
        An opened journal.
    key_for : callable
        Stable task-item → key mapping shared by record and restore.

    Returns
    -------
    list
        One result per item, exactly as an unjournaled ``map_tasks``.
    """
    items = list(items)
    start = time.perf_counter()
    available = journal.restore()
    keys = [key_for(item) for item in items]
    missing = [item for key, item in zip(keys, items) if key not in available]
    restore_seconds = time.perf_counter() - start
    policy = getattr(framework, "fault_policy", None)
    interval = getattr(policy, "checkpoint_interval_tasks", 1) if policy else 1
    wrapped = JournaledTask(fn, journal.directory, key_for, interval)
    computed = framework.map_tasks(wrapped, missing)
    fresh = iter(computed)
    results = [available[key] if key in available else next(fresh)
               for key in keys]
    framework.metrics.tasks_restored += len(items) - len(missing)
    framework.metrics.restore_seconds += restore_seconds
    return results
