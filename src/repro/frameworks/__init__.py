"""Task-parallel framework substrates.

Four architecture-faithful re-implementations of the substrates the paper
evaluates, all exposing the uniform :class:`~repro.frameworks.base.TaskFramework`
surface used by :mod:`repro.core`:

=================  =====================================================
``sparklite``      Spark: RDDs, stage-oriented DAG scheduler, hash
                   shuffle, broadcast variables, caching
``dasklite``       Dask: delayed task graphs, dependency-driven
                   scheduler, bags, client/futures/scatter
``pilot``          RADICAL-Pilot: pilots, compute units, database-
                   mediated state, file staging, no shuffle
``mpilite``        MPI: SPMD ranks with explicit collectives
=================  =====================================================
"""

from .base import BroadcastHandle, RunMetrics, TaskFramework
from .checkpoint import (
    JournaledTask,
    RunJournal,
    StaleJournal,
    checkpointed_map,
    run_fingerprint,
)
from .cluster import ClusterSpec, local_cluster
from .executors import (
    ExecutorBase,
    ProcessExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    ThreadExecutor,
    default_worker_count,
    make_executor,
)
from .faults import (
    DEFAULT_POLICY,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    InjectedFault,
    WorkerLost,
)
from .serialization import estimate_transfer_time, nbytes_of, serialized_size
from .shm import DATA_PLANES, BlockLost, BlockRef, FileBackedStore, SharedMemoryStore
from .sparklite import SparkLiteContext
from .dasklite import DaskLiteClient
from .pilot import PilotFramework
from .mpilite import MPIFramework

__all__ = [
    "TaskFramework",
    "RunMetrics",
    "BroadcastHandle",
    "ClusterSpec",
    "local_cluster",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedMemoryExecutor",
    "make_executor",
    "default_worker_count",
    "serialized_size",
    "nbytes_of",
    "estimate_transfer_time",
    "DATA_PLANES",
    "BlockLost",
    "BlockRef",
    "FileBackedStore",
    "SharedMemoryStore",
    "FaultPolicy",
    "FaultSpec",
    "FaultInjector",
    "DEFAULT_POLICY",
    "InjectedFault",
    "WorkerLost",
    "RunJournal",
    "StaleJournal",
    "JournaledTask",
    "checkpointed_map",
    "run_fingerprint",
    "SparkLiteContext",
    "DaskLiteClient",
    "PilotFramework",
    "MPIFramework",
    "make_framework",
    "FRAMEWORK_NAMES",
]

#: Canonical framework names accepted by :func:`make_framework`.
FRAMEWORK_NAMES = ("sparklite", "dasklite", "pilot", "mpilite")


def make_framework(name: str, **kwargs) -> TaskFramework:
    """Instantiate a framework substrate by name.

    Accepts the canonical names plus the paper's spellings ("spark",
    "dask", "radical-pilot", "mpi", "mpi4py").
    """
    normalized = name.lower().replace("_", "-")
    aliases = {
        "spark": "sparklite",
        "sparklite": "sparklite",
        "dask": "dasklite",
        "dasklite": "dasklite",
        "radical-pilot": "pilot",
        "rp": "pilot",
        "pilot": "pilot",
        "mpi": "mpilite",
        "mpi4py": "mpilite",
        "mpilite": "mpilite",
    }
    if normalized not in aliases:
        raise ValueError(
            f"unknown framework {name!r}; expected one of {sorted(set(aliases))}"
        )
    canonical = aliases[normalized]
    if canonical == "sparklite":
        return SparkLiteContext(**kwargs)
    if canonical == "dasklite":
        return DaskLiteClient(**kwargs)
    if canonical == "pilot":
        return PilotFramework(**kwargs)
    return MPIFramework(**kwargs)
