"""Common framework interface and run metrics.

The paper compares four task-parallel substrates.  To let the algorithms
in :mod:`repro.core` run unchanged on every substrate, each substrate
exposes the same minimal surface:

* ``name`` — the framework's identity ("sparklite", "dasklite", "pilot",
  "mpilite"),
* ``map_tasks(fn, items)`` — run a bag of independent tasks and return
  results in order (the task-API / map-only pattern used by PSA and
  Leaflet Finder approach 2),
* ``broadcast(value)`` — make a value available to every task, returning a
  handle with byte accounting (approach 1),
* ``metrics`` — a :class:`RunMetrics` accumulating task counts, overheads
  and communication volumes for the most recent operation.

Richer, framework-specific APIs (RDDs, bags, delayed graphs, compute
units, communicators) remain available on the concrete classes — the
algorithms use them where the paper's implementation did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence, Tuple

import numpy as np

from .cluster import ClusterSpec, local_cluster
from .executors import (
    ExecutorBase,
    ProcessExecutor,
    SharedMemoryExecutor,
    make_executor,
)
from .faults import (
    NO_RETRIES,
    FaultCounters,
    FaultInjector,
    FaultPolicy,
    RetryingCall,
    as_injector,
)
from .serialization import nbytes_of, serialized_size
from .shm import (
    DATA_PLANES,
    ResolvingTask,
    SharedMemoryStore,
    adopt_payload,
    refs_nbytes,
    share_payload,
)

__all__ = ["RunMetrics", "BroadcastHandle", "TaskFramework"]


@dataclass
class RunMetrics:
    """Accumulated measurements for one framework operation.

    Attributes
    ----------
    tasks_submitted / tasks_completed:
        Task counts.
    wall_time_s:
        End-to-end wall clock of the operation.
    task_time_s:
        Sum of the individual task durations (useful work + per-task
        overhead inside workers).
    overhead_s:
        Framework overhead: wall time not attributable to the critical
        path of useful work (estimated as ``wall - task_time/workers``).
    bytes_broadcast / bytes_shuffled / bytes_staged:
        Communication volumes, measured with
        :func:`repro.frameworks.serialization.nbytes_of` /
        ``serialized_size`` depending on the substrate.
    bytes_pickled / bytes_shared:
        Data-plane split for *task payloads*: bytes that cross (or, for
        in-process executors, *would* cross) a process boundary
        serialized, vs array bytes accessed zero-copy through the
        shared-memory plane (:mod:`repro.frameworks.shm`).  Process
        pools measure real pickled sizes; in-process executors estimate
        with :func:`~repro.frameworks.serialization.nbytes_of`, the same
        would-move convention used for broadcast/shuffle volumes.
    bytes_results_pickled / bytes_shared_results:
        The same split for the *result* direction: result-payload bytes
        serialized back to the driver (on the shm plane just the refs)
        vs array bytes returned through shared segments the driver
        resolves zero-copy.
    bytes_spilled:
        Cumulative bytes the framework's store moved to its disk tier
        (non-zero only when a ``store_capacity_bytes`` watermark is
        configured and exceeded).
    bytes_ingested / peak_resident_bytes:
        The streaming-input split: cumulative unique chunk bytes the
        store ingested from source files
        (:meth:`~repro.frameworks.shm.SharedMemoryStore.ingest`), and
        the residency high-water mark over the run.  An out-of-core run
        shows ``peak_resident_bytes`` well below ``bytes_ingested``.
        Like the spill counters, these mirror the store's cumulative
        values.
    spill_wait_seconds / spill_hidden_seconds:
        The write-behind split of the spill cost: seconds eviction
        stalled the task/result hot path (the whole file write for
        synchronous stores, backpressure blocking for write-behind
        stores) vs seconds the spill-writer thread spent writing in the
        background.  Like ``bytes_spilled``, these mirror the store's
        cumulative counters.
    tasks_retried / tasks_lost:
        Resilience counters: task re-executions performed by the fault
        policy, and how many failures were worker deaths or lost data
        blocks (as opposed to in-task exceptions).  A fault-free run
        reports 0 / 0.
    recovery_seconds:
        Driver-observed time spent recovering: retry backoffs, block
        healing, orphan-segment sweeps and process-pool rebuilds — the
        resilience overhead an experiment subtracts to compare against
        a fault-free run.
    tasks_speculated / speculation_wins:
        Straggler mitigation: duplicate attempts launched because a
        task overran the policy's ``speculation_factor`` threshold, and
        how many of those duplicates produced the winning result.
    tasks_restored / restore_seconds:
        Checkpoint/restart accounting: tasks whose results were
        replayed from a :class:`~repro.frameworks.checkpoint.RunJournal`
        instead of re-executed, and the driver time spent replaying.
    tasks_local / tasks_remote:
        Placement accounting (non-zero only with
        ``FaultPolicy.locality``): tasks the locality scheduler placed
        on a lane whose resident set covered every spilled input block
        (*local*) vs tasks that had to pay at least one cold spill read
        (*remote*).  A task with no spilled inputs counts local, so
        ``tasks_local + tasks_remote`` equals the tasks placed.
    bytes_spill_reads_avoided:
        Spilled-block bytes that affinity placement found already
        mapped on the chosen worker — cold disk reads the run did not
        pay.
    prefetch_hints_dropped:
        Prefetch hints discarded because the hint queue was full
        (observability for tuning prefetch depth vs
        ``spill_queue_depth``).
    events:
        Free-form ``(label, value)`` pairs recorded by substrates
        (e.g. per-stage timings, database round-trips).
    """

    tasks_submitted: int = 0
    tasks_completed: int = 0
    wall_time_s: float = 0.0
    task_time_s: float = 0.0
    overhead_s: float = 0.0
    bytes_broadcast: int = 0
    bytes_shuffled: int = 0
    bytes_staged: int = 0
    bytes_pickled: int = 0
    bytes_shared: int = 0
    bytes_results_pickled: int = 0
    bytes_shared_results: int = 0
    bytes_spilled: int = 0
    bytes_ingested: int = 0
    peak_resident_bytes: int = 0
    spill_wait_seconds: float = 0.0
    spill_hidden_seconds: float = 0.0
    tasks_retried: int = 0
    tasks_lost: int = 0
    recovery_seconds: float = 0.0
    tasks_speculated: int = 0
    speculation_wins: int = 0
    tasks_restored: int = 0
    restore_seconds: float = 0.0
    tasks_local: int = 0
    tasks_remote: int = 0
    bytes_spill_reads_avoided: int = 0
    prefetch_hints_dropped: int = 0
    events: List[tuple] = field(default_factory=list)

    def record_event(self, label: str, value: Any) -> None:
        """Append a free-form measurement."""
        self.events.append((label, value))

    def merge(self, other: "RunMetrics") -> "RunMetrics":
        """Combine two metric records (used when an algorithm runs stages)."""
        merged = RunMetrics(
            tasks_submitted=self.tasks_submitted + other.tasks_submitted,
            tasks_completed=self.tasks_completed + other.tasks_completed,
            wall_time_s=self.wall_time_s + other.wall_time_s,
            task_time_s=self.task_time_s + other.task_time_s,
            overhead_s=self.overhead_s + other.overhead_s,
            bytes_broadcast=self.bytes_broadcast + other.bytes_broadcast,
            bytes_shuffled=self.bytes_shuffled + other.bytes_shuffled,
            bytes_staged=self.bytes_staged + other.bytes_staged,
            bytes_pickled=self.bytes_pickled + other.bytes_pickled,
            bytes_shared=self.bytes_shared + other.bytes_shared,
            bytes_results_pickled=self.bytes_results_pickled + other.bytes_results_pickled,
            bytes_shared_results=self.bytes_shared_results + other.bytes_shared_results,
            bytes_spilled=max(self.bytes_spilled, other.bytes_spilled),
            bytes_ingested=max(self.bytes_ingested, other.bytes_ingested),
            peak_resident_bytes=max(self.peak_resident_bytes,
                                    other.peak_resident_bytes),
            spill_wait_seconds=max(self.spill_wait_seconds, other.spill_wait_seconds),
            spill_hidden_seconds=max(self.spill_hidden_seconds,
                                     other.spill_hidden_seconds),
            tasks_retried=self.tasks_retried + other.tasks_retried,
            tasks_lost=self.tasks_lost + other.tasks_lost,
            recovery_seconds=self.recovery_seconds + other.recovery_seconds,
            tasks_speculated=self.tasks_speculated + other.tasks_speculated,
            speculation_wins=self.speculation_wins + other.speculation_wins,
            tasks_restored=self.tasks_restored + other.tasks_restored,
            restore_seconds=self.restore_seconds + other.restore_seconds,
            tasks_local=self.tasks_local + other.tasks_local,
            tasks_remote=self.tasks_remote + other.tasks_remote,
            bytes_spill_reads_avoided=self.bytes_spill_reads_avoided
            + other.bytes_spill_reads_avoided,
            prefetch_hints_dropped=self.prefetch_hints_dropped
            + other.prefetch_hints_dropped,
            events=self.events + other.events,
        )
        return merged

    def as_dict(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "tasks_submitted": self.tasks_submitted,
            "tasks_completed": self.tasks_completed,
            "wall_time_s": self.wall_time_s,
            "task_time_s": self.task_time_s,
            "overhead_s": self.overhead_s,
            "bytes_broadcast": self.bytes_broadcast,
            "bytes_shuffled": self.bytes_shuffled,
            "bytes_staged": self.bytes_staged,
            "bytes_pickled": self.bytes_pickled,
            "bytes_shared": self.bytes_shared,
            "bytes_results_pickled": self.bytes_results_pickled,
            "bytes_shared_results": self.bytes_shared_results,
            "bytes_spilled": self.bytes_spilled,
            "bytes_ingested": self.bytes_ingested,
            "peak_resident_bytes": self.peak_resident_bytes,
            "spill_wait_seconds": self.spill_wait_seconds,
            "spill_hidden_seconds": self.spill_hidden_seconds,
            "tasks_retried": self.tasks_retried,
            "tasks_lost": self.tasks_lost,
            "recovery_seconds": self.recovery_seconds,
            "tasks_speculated": self.tasks_speculated,
            "speculation_wins": self.speculation_wins,
            "tasks_restored": self.tasks_restored,
            "restore_seconds": self.restore_seconds,
            "tasks_local": self.tasks_local,
            "tasks_remote": self.tasks_remote,
            "bytes_spill_reads_avoided": self.bytes_spill_reads_avoided,
            "prefetch_hints_dropped": self.prefetch_hints_dropped,
        }


@dataclass
class BroadcastHandle:
    """Handle to a broadcast value plus its measured size.

    ``value`` is accessible from every task (all substrates here share an
    address space or re-ship the value to worker processes); ``nbytes``
    records how much data a distributed deployment would have had to move
    to every node.  On the shm data plane ``value`` is a
    :class:`~repro.frameworks.shm.BlockRef`, ``nbytes`` shrinks to the
    ref's pickled size and ``bytes_shared`` carries the array bytes that
    are shared instead of moved.
    """

    value: Any
    nbytes: int
    framework: str = ""
    bytes_shared: int = 0

    def unpersist(self) -> None:
        """Drop the reference to the underlying value."""
        self.value = None


class TaskFramework:
    """Base class for the four substrates.

    Parameters
    ----------
    cluster:
        The resources the framework is "deployed" on; defaults to a
        single-node local cluster sized to the executor's worker count.
    executor:
        Physical task executor ("serial", "threads", "processes", "shm"
        or an :class:`ExecutorBase` instance).
    data_plane:
        ``"pickle"`` (default) ships task payloads whole; ``"shm"``
        registers NumPy payloads in a :class:`SharedMemoryStore` once and
        ships :class:`~repro.frameworks.shm.BlockRef` handles instead,
        the zero-copy plane described in :mod:`repro.frameworks.shm`.
        On the shm plane *results* ride the plane too: tasks return refs
        and the framework resolves them zero-copy before handing results
        back.
    store_capacity_bytes:
        Optional watermark for the framework's store: resident segment
        bytes past it spill least-recently-used-first to memory-mapped
        files, so workloads larger than ``/dev/shm`` complete instead of
        crashing.  ``None`` (default) disables spilling.
    spill_dir:
        Directory for the spill tier (a private temporary directory when
        omitted).
    spill_async:
        ``True`` (default) makes the spill tier write-behind: evictions
        enqueue onto a dedicated spill-writer thread instead of writing
        the file in the putting thread, and the metrics split the cost
        into ``spill_wait_seconds`` (hot-path stall) vs
        ``spill_hidden_seconds`` (background writes).  ``False``
        restores synchronous spilling.
    spill_queue_depth:
        Bound on the write-behind queue before eviction applies
        backpressure (default 4).
    fault_policy:
        A :class:`~repro.frameworks.faults.FaultPolicy` opting the
        substrate into the resilience layer: failed tasks are retried
        deterministically, dead pool workers are replaced and their
        in-flight tasks resubmitted, and lost data blocks are healed or
        re-computed.  ``None`` (default) keeps fail-fast behaviour.
    faults:
        Deterministic fault injection for chaos runs: a
        :class:`~repro.frameworks.faults.FaultInjector`, a single
        :class:`~repro.frameworks.faults.FaultSpec`, or a sequence of
        specs.  Faults are consumed at first-attempt dispatch, so a
        recovered run continues fault-free.
    """

    name = "base"

    #: Whether ``map_tasks`` physically runs its tasks on ``self.executor``.
    #: dasklite (graph scheduler) and mpilite (SPMD rank threads) execute
    #: tasks elsewhere, so executor-based payload conversion/measurement
    #: does not apply to them.
    _executor_runs_tasks = True

    def __init__(self, cluster: ClusterSpec | None = None,
                 executor: str | ExecutorBase = "serial",
                 workers: int | None = None,
                 data_plane: str = "pickle",
                 store_capacity_bytes: int | None = None,
                 spill_dir: str | None = None,
                 spill_async: bool = True,
                 spill_queue_depth: int = 4,
                 fault_policy: FaultPolicy | None = None,
                 faults: FaultInjector | Any = None) -> None:
        if data_plane not in DATA_PLANES:
            raise ValueError(
                f"unknown data_plane {data_plane!r}; choose from {DATA_PLANES}"
            )
        self.fault_policy = fault_policy
        self.fault_injector = as_injector(faults)
        self._fault_counters = FaultCounters()
        if isinstance(executor, ExecutorBase):
            self.executor = executor
            # framework-level settings win where given, but a pre-built
            # executor's own fault configuration is never wiped by an
            # absent one
            if fault_policy is not None:
                self.executor.fault_policy = fault_policy
            if self.fault_injector is not None:
                self.executor.fault_injector = self.fault_injector
            # ...and an executor-only configuration reaches the
            # substrates that wrap tasks driver-side instead
            if self.fault_policy is None:
                self.fault_policy = self.executor.fault_policy
            if self.fault_injector is None:
                self.fault_injector = self.executor.fault_injector
        else:
            self.executor = make_executor(executor, workers,
                                          store_capacity_bytes=store_capacity_bytes,
                                          spill_dir=spill_dir,
                                          spill_async=spill_async,
                                          spill_queue_depth=spill_queue_depth,
                                          fault_policy=fault_policy,
                                          fault_injector=self.fault_injector)
        self.cluster = cluster or local_cluster(cores=self.executor.workers)
        self.metrics = RunMetrics()
        self.data_plane = data_plane
        # a SharedMemoryExecutor brings its own store; otherwise the
        # framework owns one for the lifetime of the substrate
        self.store: SharedMemoryStore | None = getattr(self.executor, "store", None)
        self._owns_store = False
        if self.data_plane == "shm" and self.store is None:
            self.store = SharedMemoryStore(capacity_bytes=store_capacity_bytes,
                                           spill_dir=spill_dir,
                                           spill_async=spill_async,
                                           spill_queue_depth=spill_queue_depth)
            self._owns_store = True
        # lost-block healing must reach the store the payload refs came
        # from, wherever the retry loop runs
        self.executor.fault_store = self.store

    # ------------------------------------------------------------------ #
    # the uniform surface used by repro.core
    # ------------------------------------------------------------------ #
    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run independent tasks and return their results in input order."""
        items = list(items)
        self.metrics = RunMetrics(tasks_submitted=len(items))
        fn, items = self._apply_data_plane(fn, items)
        start = time.perf_counter()
        results = self._run_tasks(fn, items)
        wall = time.perf_counter() - start
        results = self._finish_results(results)
        task_time = self.executor.total_task_time
        self.metrics.tasks_completed = len(results)
        self.metrics.wall_time_s = wall
        self.metrics.task_time_s = task_time
        workers = max(1, self.executor.workers)
        self.metrics.overhead_s = max(0.0, wall - task_time / workers)
        self._collect_executor_bytes()
        return results

    def broadcast(self, value: Any) -> BroadcastHandle:
        """Make ``value`` available to all tasks; record its size.

        On the shm plane an array value is placed in the store once; the
        handle then carries a ref whose pickled size is what actually
        moves, while the array bytes are accounted as shared.
        """
        ref = self._share_value(value)
        if ref is not None:
            handle = BroadcastHandle(value=ref, nbytes=serialized_size(ref),
                                     framework=self.name, bytes_shared=ref.nbytes)
            self.metrics.bytes_broadcast += handle.nbytes
            self.metrics.bytes_shared += handle.bytes_shared
            return handle
        handle = BroadcastHandle(value=value, nbytes=nbytes_of(value),
                                 framework=self.name)
        self.metrics.bytes_broadcast += handle.nbytes
        return handle

    # ------------------------------------------------------------------ #
    # data-plane helpers shared by the substrates
    # ------------------------------------------------------------------ #
    @property
    def _executor_measures(self) -> bool:
        """Whether the executor records real crossing bytes itself.

        True only when tasks physically run on a process-based executor:
        its per-task timings then hold measured pickled/shared sizes for
        both directions, and the framework layer must not re-estimate
        them.  ``_apply_data_plane`` and ``_finish_results`` both key off
        this one definition so task- and result-direction accounting
        stay consistent.
        """
        return (self._executor_runs_tasks
                and isinstance(self.executor,
                               (ProcessExecutor, SharedMemoryExecutor)))

    def _fault_wrap(self, fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
        """Wrap a task function with the in-process retry loop if needed.

        Substrates whose tasks do not run on ``self.executor`` (dasklite's
        graph scheduler, mpilite's rank threads) call this after the
        data-plane conversion, so the retry wrapper covers payload
        resolution, the kernel, and result conversion; substrates that
        run on the executor get the equivalent loop from the executor
        itself and must not double-wrap.  Returns ``fn`` unchanged when
        no policy or injector is configured.
        """
        if self.fault_policy is None and self.fault_injector is None:
            return fn
        self._fault_counters.reset()
        return RetryingCall(fn, self.fault_policy or NO_RETRIES,
                            injector=self.fault_injector,
                            counters=self._fault_counters,
                            store=self.store)

    def _share_value(self, value: Any):
        """Store ``value`` on the shm plane if eligible; the ref or None."""
        if (self.data_plane == "shm" and self.store is not None
                and isinstance(value, np.ndarray) and value.nbytes > 0):
            return self.store.put(value)
        return None

    def _apply_data_plane(self, fn: Callable[[Any], Any],
                          items: Sequence[Any]) -> Tuple[Callable[[Any], Any], List[Any]]:
        """Convert task payloads for the active data plane.

        On the pickle plane payloads pass through unchanged; when no
        process pool will measure real pickled sizes, the would-cross
        payload volume is estimated with ``nbytes_of`` so both planes
        report comparable ``bytes_pickled`` numbers.  On the shm plane
        every array inside every payload is swapped for a ref
        (deduplicated store-wide), ``fn`` is wrapped to resolve refs
        back to views task-side *and* to send result arrays back through
        the plane (into the framework's store for in-process executors,
        via worker-side publish for process pools), and the metrics
        record the pickled-vs-shared byte split that a process-crossing
        deployment would see.  A :class:`SharedMemoryExecutor` that
        actually runs the tasks converts and accounts payloads itself,
        so the conversion is skipped to avoid double work.
        """
        items = list(items)
        executor_measures = self._executor_measures
        if self.data_plane != "shm" or self.store is None:
            if not executor_measures:
                self.metrics.bytes_pickled += sum(nbytes_of(item) for item in items)
            return fn, items
        if executor_measures and isinstance(self.executor, SharedMemoryExecutor):
            return fn, items
        shared_items = [share_payload(item, self.store)[0] for item in items]
        self.metrics.bytes_shared += sum(refs_nbytes(item) for item in shared_items)
        self.metrics.bytes_pickled += sum(serialized_size(item) for item in shared_items)
        if executor_measures:
            # a plain process pool: the store cannot pickle into the
            # workers, so results are published as standalone segments
            # and adopted driver-side in _finish_results
            return ResolvingTask(fn, publish_results=True), shared_items
        return ResolvingTask(fn, result_store=self.store), shared_items

    def _finish_results(self, results: List[Any]) -> List[Any]:
        """Bring task results back from the active data plane.

        On the shm plane results arrive as ref payloads: the refs'
        segments are adopted into the framework's store (so their
        lifetime and spilling are managed centrally) and resolved to
        read-only zero-copy views.  The result-direction byte split is
        recorded the same way as the task direction: real pickled sizes
        where a process pool measured them, ``serialized_size`` /
        ``nbytes_of`` would-move estimates otherwise.
        """
        executor_measures = self._executor_measures
        if self.data_plane == "shm" and self.store is not None:
            if not (executor_measures
                    and isinstance(self.executor, SharedMemoryExecutor)):
                self.metrics.bytes_shared_results += sum(refs_nbytes(r) for r in results)
                if not executor_measures:
                    self.metrics.bytes_results_pickled += sum(
                        serialized_size(r) for r in results)
                results = [adopt_payload(r, self.store) for r in results]
            self.metrics.bytes_spilled = max(self.metrics.bytes_spilled,
                                             self.store.bytes_spilled)
            self.metrics.bytes_ingested = max(self.metrics.bytes_ingested,
                                              getattr(self.store, "bytes_ingested", 0))
            self.metrics.peak_resident_bytes = max(
                self.metrics.peak_resident_bytes,
                getattr(self.store, "peak_resident_bytes", 0))
            self.metrics.spill_wait_seconds = max(self.metrics.spill_wait_seconds,
                                                  self.store.spill_wait_seconds)
            self.metrics.spill_hidden_seconds = max(self.metrics.spill_hidden_seconds,
                                                    self.store.spill_hidden_seconds)
        elif not executor_measures:
            self.metrics.bytes_results_pickled += sum(nbytes_of(r) for r in results)
        return results

    # ------------------------------------------------------------------ #
    def _collect_executor_bytes(self) -> None:
        """Fold the executor's per-task byte and spill accounting into the metrics.

        ``_apply_data_plane`` estimates payload bytes driver-side and a
        process-based executor measures the same payloads as they cross;
        both describe one crossing, so take the larger rather than
        summing them.  The same applies to the spill split: the store's
        cumulative counters and the executor's per-task attribution
        describe the same stalls, and the executor totals are the only
        source when a :class:`SharedMemoryExecutor` runs under a
        framework whose own plane is ``"pickle"`` (its internal plane
        still spills, but ``_finish_results`` never consults the store).
        """
        self.metrics.bytes_pickled = max(self.metrics.bytes_pickled,
                                         self.executor.total_bytes_pickled)
        self.metrics.bytes_shared = max(self.metrics.bytes_shared,
                                        self.executor.total_bytes_shared)
        self.metrics.bytes_results_pickled = max(self.metrics.bytes_results_pickled,
                                                 self.executor.total_bytes_results_pickled)
        self.metrics.bytes_shared_results = max(self.metrics.bytes_shared_results,
                                                self.executor.total_bytes_results_shared)
        self.metrics.spill_wait_seconds = max(self.metrics.spill_wait_seconds,
                                              self.executor.total_spill_wait_seconds)
        self.metrics.spill_hidden_seconds = max(self.metrics.spill_hidden_seconds,
                                                self.executor.total_spill_hidden_seconds)
        # resilience counters: executor-run substrates record retries in
        # the per-task timings, wrapping substrates (and pilot's unit
        # rescheduling) in the framework-side counters — the two sources
        # describe disjoint events, so they sum
        self.metrics.tasks_retried += (self.executor.total_tasks_retried
                                       + self._fault_counters.tasks_retried)
        self.metrics.tasks_lost += (self.executor.total_tasks_lost
                                    + self._fault_counters.tasks_lost)
        self.metrics.recovery_seconds += (self.executor.total_recovery_seconds
                                          + self._fault_counters.recovery_seconds)
        self.metrics.tasks_speculated += (self.executor.total_tasks_speculated
                                          + self._fault_counters.tasks_speculated)
        self.metrics.speculation_wins += (self.executor.total_speculation_wins
                                          + self._fault_counters.speculation_wins)
        self.metrics.tasks_local += (self.executor.total_tasks_local
                                     + self._fault_counters.tasks_local)
        self.metrics.tasks_remote += (self.executor.total_tasks_remote
                                      + self._fault_counters.tasks_remote)
        self.metrics.bytes_spill_reads_avoided += (
            self.executor.total_bytes_spill_reads_avoided
            + self._fault_counters.bytes_spill_reads_avoided)
        self.metrics.prefetch_hints_dropped += (
            self.executor.total_prefetch_hints_dropped
            + self._fault_counters.prefetch_hints_dropped)
        # folded into this operation's metrics: start the next one clean
        self._fault_counters.reset()

    def _run_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Substrate-specific execution; default delegates to the executor."""
        return self.executor.map_tasks(fn, items)

    def close(self) -> None:
        """Release executor resources and any owned shared-memory store."""
        self.executor.shutdown()
        if self._owns_store and self.store is not None:
            self.store.cleanup()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} on {self.cluster.name}: "
                f"{self.cluster.total_cores} cores, "
                f"executor={type(self.executor).__name__}>")
