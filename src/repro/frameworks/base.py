"""Common framework interface and run metrics.

The paper compares four task-parallel substrates.  To let the algorithms
in :mod:`repro.core` run unchanged on every substrate, each substrate
exposes the same minimal surface:

* ``name`` — the framework's identity ("sparklite", "dasklite", "pilot",
  "mpilite"),
* ``map_tasks(fn, items)`` — run a bag of independent tasks and return
  results in order (the task-API / map-only pattern used by PSA and
  Leaflet Finder approach 2),
* ``broadcast(value)`` — make a value available to every task, returning a
  handle with byte accounting (approach 1),
* ``metrics`` — a :class:`RunMetrics` accumulating task counts, overheads
  and communication volumes for the most recent operation.

Richer, framework-specific APIs (RDDs, bags, delayed graphs, compute
units, communicators) remain available on the concrete classes — the
algorithms use them where the paper's implementation did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence

from .cluster import ClusterSpec, local_cluster
from .executors import ExecutorBase, SerialExecutor, make_executor
from .serialization import nbytes_of

__all__ = ["RunMetrics", "BroadcastHandle", "TaskFramework"]


@dataclass
class RunMetrics:
    """Accumulated measurements for one framework operation.

    Attributes
    ----------
    tasks_submitted / tasks_completed:
        Task counts.
    wall_time_s:
        End-to-end wall clock of the operation.
    task_time_s:
        Sum of the individual task durations (useful work + per-task
        overhead inside workers).
    overhead_s:
        Framework overhead: wall time not attributable to the critical
        path of useful work (estimated as ``wall - task_time/workers``).
    bytes_broadcast / bytes_shuffled / bytes_staged:
        Communication volumes, measured with
        :func:`repro.frameworks.serialization.nbytes_of` /
        ``serialized_size`` depending on the substrate.
    events:
        Free-form ``(label, value)`` pairs recorded by substrates
        (e.g. per-stage timings, database round-trips).
    """

    tasks_submitted: int = 0
    tasks_completed: int = 0
    wall_time_s: float = 0.0
    task_time_s: float = 0.0
    overhead_s: float = 0.0
    bytes_broadcast: int = 0
    bytes_shuffled: int = 0
    bytes_staged: int = 0
    events: List[tuple] = field(default_factory=list)

    def record_event(self, label: str, value: Any) -> None:
        """Append a free-form measurement."""
        self.events.append((label, value))

    def merge(self, other: "RunMetrics") -> "RunMetrics":
        """Combine two metric records (used when an algorithm runs stages)."""
        merged = RunMetrics(
            tasks_submitted=self.tasks_submitted + other.tasks_submitted,
            tasks_completed=self.tasks_completed + other.tasks_completed,
            wall_time_s=self.wall_time_s + other.wall_time_s,
            task_time_s=self.task_time_s + other.task_time_s,
            overhead_s=self.overhead_s + other.overhead_s,
            bytes_broadcast=self.bytes_broadcast + other.bytes_broadcast,
            bytes_shuffled=self.bytes_shuffled + other.bytes_shuffled,
            bytes_staged=self.bytes_staged + other.bytes_staged,
            events=self.events + other.events,
        )
        return merged

    def as_dict(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "tasks_submitted": self.tasks_submitted,
            "tasks_completed": self.tasks_completed,
            "wall_time_s": self.wall_time_s,
            "task_time_s": self.task_time_s,
            "overhead_s": self.overhead_s,
            "bytes_broadcast": self.bytes_broadcast,
            "bytes_shuffled": self.bytes_shuffled,
            "bytes_staged": self.bytes_staged,
        }


@dataclass
class BroadcastHandle:
    """Handle to a broadcast value plus its measured size.

    ``value`` is accessible from every task (all substrates here share an
    address space or re-ship the value to worker processes); ``nbytes``
    records how much data a distributed deployment would have had to move
    to every node.
    """

    value: Any
    nbytes: int
    framework: str = ""

    def unpersist(self) -> None:
        """Drop the reference to the underlying value."""
        self.value = None


class TaskFramework:
    """Base class for the four substrates.

    Parameters
    ----------
    cluster:
        The resources the framework is "deployed" on; defaults to a
        single-node local cluster sized to the executor's worker count.
    executor:
        Physical task executor ("serial", "threads", "processes" or an
        :class:`ExecutorBase` instance).
    """

    name = "base"

    def __init__(self, cluster: ClusterSpec | None = None,
                 executor: str | ExecutorBase = "serial",
                 workers: int | None = None) -> None:
        if isinstance(executor, ExecutorBase):
            self.executor = executor
        else:
            self.executor = make_executor(executor, workers)
        self.cluster = cluster or local_cluster(cores=self.executor.workers)
        self.metrics = RunMetrics()

    # ------------------------------------------------------------------ #
    # the uniform surface used by repro.core
    # ------------------------------------------------------------------ #
    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run independent tasks and return their results in input order."""
        items = list(items)
        self.metrics = RunMetrics(tasks_submitted=len(items))
        start = time.perf_counter()
        results = self._run_tasks(fn, items)
        wall = time.perf_counter() - start
        task_time = self.executor.total_task_time
        self.metrics.tasks_completed = len(results)
        self.metrics.wall_time_s = wall
        self.metrics.task_time_s = task_time
        workers = max(1, self.executor.workers)
        self.metrics.overhead_s = max(0.0, wall - task_time / workers)
        return results

    def broadcast(self, value: Any) -> BroadcastHandle:
        """Make ``value`` available to all tasks; record its size."""
        handle = BroadcastHandle(value=value, nbytes=nbytes_of(value),
                                 framework=self.name)
        self.metrics.bytes_broadcast += handle.nbytes
        return handle

    # ------------------------------------------------------------------ #
    def _run_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Substrate-specific execution; default delegates to the executor."""
        return self.executor.map_tasks(fn, items)

    def close(self) -> None:
        """Release executor resources."""
        self.executor.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} on {self.cluster.name}: "
                f"{self.cluster.total_cores} cores, "
                f"executor={type(self.executor).__name__}>")
