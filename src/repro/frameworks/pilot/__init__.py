"""pilot: a RADICAL-Pilot-style substrate (pilots, compute units, DB-mediated state)."""

from .agent import AgentStats, PilotAgent
from .database import DatabaseStats, StateDatabase
from .pilot import (
    Pilot,
    PilotDescription,
    PilotFramework,
    PilotManager,
    Session,
    UnitManager,
)
from .units import ComputeUnit, ComputeUnitDescription, UnitState

__all__ = [
    "PilotFramework",
    "Pilot",
    "PilotDescription",
    "PilotManager",
    "UnitManager",
    "Session",
    "ComputeUnit",
    "ComputeUnitDescription",
    "UnitState",
    "PilotAgent",
    "AgentStats",
    "StateDatabase",
    "DatabaseStats",
]
