"""The pilot agent: scheduler + executor running inside the allocation.

Once a pilot is active on the compute nodes, its *agent* repeatedly pulls
schedulable Compute Units from the coordination database, assigns them to
free cores, executes them, and writes results/state transitions back.
This module implements that loop synchronously (the unit manager drives
it), which keeps tests deterministic while preserving the cost structure:
every batch pulled and every state pushed is a database round trip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

from ..executors import ExecutorBase, SerialExecutor
from .database import StateDatabase
from .units import ComputeUnit, UnitState

__all__ = ["AgentStats", "PilotAgent"]


@dataclass
class AgentStats:
    """Counters describing one agent's activity.

    The three resilience counters accumulate the executor's per-batch
    retry accounting across the whole drain (the executor itself only
    reports its most recent ``map_tasks`` call).
    """

    units_executed: int = 0
    batches_pulled: int = 0
    execution_time_s: float = 0.0
    scheduling_time_s: float = 0.0
    tasks_retried: int = 0
    tasks_lost: int = 0
    recovery_seconds: float = 0.0
    tasks_speculated: int = 0
    speculation_wins: int = 0
    tasks_local: int = 0
    tasks_remote: int = 0
    bytes_spill_reads_avoided: int = 0
    prefetch_hints_dropped: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view for metric events."""
        return {
            "units_executed": self.units_executed,
            "batches_pulled": self.batches_pulled,
            "execution_time_s": self.execution_time_s,
            "scheduling_time_s": self.scheduling_time_s,
            "tasks_retried": self.tasks_retried,
            "tasks_lost": self.tasks_lost,
            "recovery_seconds": self.recovery_seconds,
            "tasks_speculated": self.tasks_speculated,
            "speculation_wins": self.speculation_wins,
            "tasks_local": self.tasks_local,
            "tasks_remote": self.tasks_remote,
            "bytes_spill_reads_avoided": self.bytes_spill_reads_avoided,
            "prefetch_hints_dropped": self.prefetch_hints_dropped,
        }


class PilotAgent:
    """Executes Compute Units pulled from the database on local resources.

    Parameters
    ----------
    database:
        The shared coordination database.
    executor:
        Physical executor for unit payloads (serial/threads/processes).
    cores:
        Number of cores the agent manages; batches of at most ``cores``
        units run concurrently (the agent-level scheduler).
    """

    def __init__(self, database: StateDatabase, executor: ExecutorBase | None = None,
                 cores: int = 1) -> None:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.database = database
        self.executor = executor or SerialExecutor()
        self.cores = cores
        self.stats = AgentStats()

    # ------------------------------------------------------------------ #
    def drain(self, units: Dict[str, ComputeUnit]) -> None:
        """Execute every pending unit registered in the database.

        ``units`` maps uid -> live ComputeUnit objects (the client-side
        view); the agent mirrors RP by reading *descriptions* of
        schedulable units from the database, executing them, and writing
        state + results back, batch by batch.
        """
        while True:
            sched_start = time.perf_counter()
            batch_docs = self.database.pull("state", UnitState.PENDING_INPUT_STAGING.value,
                                            limit=self.cores)
            self.stats.scheduling_time_s += time.perf_counter() - sched_start
            if not batch_docs:
                break
            self.stats.batches_pulled += 1
            batch_units = [units[doc["uid"]] for doc in batch_docs]
            # state transition: scheduling (bulk write back to the database)
            for unit in batch_units:
                unit.advance(UnitState.AGENT_SCHEDULING)
            self.database.update_many(
                {u.uid: {"state": UnitState.AGENT_SCHEDULING.value} for u in batch_units}
            )
            for unit in batch_units:
                unit.advance(UnitState.EXECUTING)
            self.database.update_many(
                {u.uid: {"state": UnitState.EXECUTING.value} for u in batch_units}
            )
            # execute the batch on the local cores
            exec_start = time.perf_counter()
            outcomes = self.executor.map_tasks(_run_unit, batch_units)
            self.stats.execution_time_s += time.perf_counter() - exec_start
            # the executor's fault accounting is per-call; roll it up so
            # retries in early batches survive the later ones
            self.stats.tasks_retried += self.executor.total_tasks_retried
            self.stats.tasks_lost += self.executor.total_tasks_lost
            self.stats.recovery_seconds += self.executor.total_recovery_seconds
            self.stats.tasks_speculated += self.executor.total_tasks_speculated
            self.stats.speculation_wins += self.executor.total_speculation_wins
            self.stats.tasks_local += self.executor.total_tasks_local
            self.stats.tasks_remote += self.executor.total_tasks_remote
            self.stats.bytes_spill_reads_avoided += (
                self.executor.total_bytes_spill_reads_avoided)
            self.stats.prefetch_hints_dropped += (
                self.executor.total_prefetch_hints_dropped)
            final_states: Dict[str, dict] = {}
            for unit, (ok, payload) in zip(batch_units, outcomes):
                if ok:
                    unit.result = payload
                    unit.advance(UnitState.DONE)
                    final_states[unit.uid] = {"state": UnitState.DONE.value}
                else:
                    unit.exception = payload
                    unit.advance(UnitState.FAILED)
                    final_states[unit.uid] = {
                        "state": UnitState.FAILED.value,
                        "error": repr(payload),
                    }
                self.stats.units_executed += 1
            self.database.update_many(final_states)


def _run_unit(unit: ComputeUnit) -> tuple:
    """Execute one unit's payload, capturing exceptions instead of raising."""
    try:
        return True, unit.execute_payload()
    except Exception as exc:  # noqa: BLE001 - unit failures must not kill the agent
        return False, exc
