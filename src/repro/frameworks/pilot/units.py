"""Compute Units: the task abstraction of the pilot framework.

RADICAL-Pilot users describe work as Compute Units (CUs): a description of
what to run plus its data dependencies.  The unit then travels through a
state model (NEW → staged → scheduled → executing → DONE/FAILED), with
every transition written to the backing database — which is precisely the
source of the per-task overhead the paper measures for RADICAL-Pilot.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, List, Optional

__all__ = ["UnitState", "ComputeUnitDescription", "ComputeUnit"]

_unit_counter = itertools.count()


class UnitState(str, Enum):
    """Lifecycle states of a Compute Unit (a condensed RP state model)."""

    NEW = "NEW"
    PENDING_INPUT_STAGING = "PENDING_INPUT_STAGING"
    AGENT_SCHEDULING = "AGENT_SCHEDULING"
    EXECUTING = "EXECUTING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELED = "CANCELED"

    @classmethod
    def terminal_states(cls) -> set:
        """States from which a unit never transitions again."""
        return {cls.DONE, cls.FAILED, cls.CANCELED}


#: The canonical forward path through the state model; used to validate
#: transitions recorded by the agent and unit manager.
_STATE_ORDER = [
    UnitState.NEW,
    UnitState.PENDING_INPUT_STAGING,
    UnitState.AGENT_SCHEDULING,
    UnitState.EXECUTING,
    UnitState.DONE,
]


@dataclass
class ComputeUnitDescription:
    """What a unit should run.

    Either ``callable_`` (a Python callable plus ``args``/``kwargs``) or
    ``executable`` (a command name, executed as a zero-workload no-op in
    this reproduction — used by the task-throughput experiment which
    submits ``/bin/hostname`` tasks) must be provided.

    ``input_staging``/``output_staging`` list the files the unit needs /
    produces; the pilot framework has no shuffle, so all inter-task data
    exchange happens through these staging directives (the limitation
    Table 1 lists for RADICAL-Pilot).
    """

    callable_: Optional[Callable[..., Any]] = None
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    executable: Optional[str] = None
    cores: int = 1
    input_staging: List[str] = field(default_factory=list)
    output_staging: List[str] = field(default_factory=list)
    name: str = ""

    def validate(self) -> None:
        """Raise :class:`ValueError` if the description is not runnable."""
        if self.callable_ is None and self.executable is None:
            raise ValueError("a ComputeUnitDescription needs a callable or an executable")
        if self.callable_ is not None and not callable(self.callable_):
            raise ValueError("callable_ must be callable")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")


class ComputeUnit:
    """A submitted unit: description + state + result."""

    def __init__(self, description: ComputeUnitDescription) -> None:
        description.validate()
        self.uid = f"unit.{next(_unit_counter):06d}"
        self.description = description
        self.state = UnitState.NEW
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.state_history: List[UnitState] = [UnitState.NEW]

    # ------------------------------------------------------------------ #
    def advance(self, new_state: UnitState) -> None:
        """Move the unit to ``new_state`` (validating the transition)."""
        if self.state in UnitState.terminal_states():
            raise RuntimeError(f"unit {self.uid} is already in terminal state {self.state}")
        if new_state == UnitState.FAILED or new_state == UnitState.CANCELED:
            self.state = new_state
            self.state_history.append(new_state)
            return
        current_idx = _STATE_ORDER.index(self.state) if self.state in _STATE_ORDER else -1
        new_idx = _STATE_ORDER.index(new_state) if new_state in _STATE_ORDER else -1
        if new_idx <= current_idx:
            raise RuntimeError(
                f"invalid state transition {self.state} -> {new_state} for {self.uid}"
            )
        self.state = new_state
        self.state_history.append(new_state)

    @property
    def __refs_payload__(self) -> tuple:
        """The walkable payload for :func:`~repro.frameworks.shm.collect_refs`.

        The unit itself is opaque to the generic payload walk; its data
        — and therefore its :class:`~repro.frameworks.shm.BlockRef`
        handles on the shm plane — lives in the description's
        ``args``/``kwargs``, which is what locality-aware placement
        needs to score.
        """
        return (self.description.args, self.description.kwargs)

    @property
    def is_done(self) -> bool:
        """True when the unit finished successfully."""
        return self.state == UnitState.DONE

    @property
    def is_terminal(self) -> bool:
        """True when the unit reached any terminal state."""
        return self.state in UnitState.terminal_states()

    def execute_payload(self) -> Any:
        """Run the unit's payload (callable or no-op executable)."""
        desc = self.description
        if desc.callable_ is not None:
            return desc.callable_(*desc.args, **desc.kwargs)
        # executable mode: zero-workload task (e.g. /bin/hostname); we do not
        # spawn a real process — the throughput experiments measure the
        # framework's scheduling path, not the OS fork cost.
        return desc.executable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ComputeUnit {self.uid} state={self.state.value}>"
