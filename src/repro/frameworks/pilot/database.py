"""Simulated coordination database.

RADICAL-Pilot coordinates its client and agent through a MongoDB
instance: unit descriptions, state transitions and results all pass
through the database.  The paper attributes RP's low task throughput and
its large runtime variance directly to these round trips ("It relies on a
MongoDB to communicate between Client and Agent ... introduce delays in
the execution of the tasks").

:class:`StateDatabase` reproduces that architecture: an in-process
document store where every operation (insert, update, query) charges a
configurable latency and counts round trips.  Setting the latency to zero
turns it into a plain dict store for fast unit tests; the calibrated
perfmodel uses realistic values to regenerate the throughput ceiling of
Figures 2 and 3.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["DatabaseStats", "StateDatabase"]


@dataclass
class DatabaseStats:
    """Operation counters for one database instance."""

    inserts: int = 0
    updates: int = 0
    queries: int = 0
    round_trips: int = 0
    simulated_latency_s: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict view for metric events."""
        return {
            "inserts": self.inserts,
            "updates": self.updates,
            "queries": self.queries,
            "round_trips": self.round_trips,
            "simulated_latency_s": self.simulated_latency_s,
        }


class StateDatabase:
    """An in-process document store with per-operation latency.

    Parameters
    ----------
    latency_s:
        Time charged per round trip.  ``0.0`` (default) performs no sleep
        and only counts operations; positive values sleep, letting live
        experiments feel the coordination cost.
    batch_size:
        Maximum number of documents returned by one ``pull`` round trip —
        RP's agent pulls units in batches, so throughput is bounded by
        ``batch_size / latency``.
    """

    def __init__(self, latency_s: float = 0.0, batch_size: int = 128) -> None:
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.latency_s = float(latency_s)
        self.batch_size = int(batch_size)
        self.stats = DatabaseStats()
        self._documents: Dict[str, dict] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _round_trip(self) -> None:
        self.stats.round_trips += 1
        if self.latency_s > 0:
            time.sleep(self.latency_s)
            self.stats.simulated_latency_s += self.latency_s

    # ------------------------------------------------------------------ #
    def insert(self, uid: str, document: dict) -> None:
        """Insert a new document (one round trip)."""
        with self._lock:
            if uid in self._documents:
                raise KeyError(f"document {uid!r} already exists")
            self._documents[uid] = dict(document)
            self.stats.inserts += 1
        self._round_trip()

    def insert_many(self, documents: Dict[str, dict]) -> None:
        """Bulk insert (a single round trip, as RP's client batches submissions)."""
        with self._lock:
            for uid, doc in documents.items():
                if uid in self._documents:
                    raise KeyError(f"document {uid!r} already exists")
                self._documents[uid] = dict(doc)
            self.stats.inserts += len(documents)
        self._round_trip()

    def update(self, uid: str, fields: dict) -> None:
        """Update fields of a document (one round trip)."""
        with self._lock:
            if uid not in self._documents:
                raise KeyError(f"unknown document {uid!r}")
            self._documents[uid].update(fields)
            self.stats.updates += 1
        self._round_trip()

    def update_many(self, updates: Dict[str, dict]) -> None:
        """Bulk update (a single round trip)."""
        with self._lock:
            for uid, fields in updates.items():
                if uid not in self._documents:
                    raise KeyError(f"unknown document {uid!r}")
                self._documents[uid].update(fields)
            self.stats.updates += len(updates)
        self._round_trip()

    def get(self, uid: str) -> dict:
        """Fetch one document (one round trip)."""
        with self._lock:
            if uid not in self._documents:
                raise KeyError(f"unknown document {uid!r}")
            doc = dict(self._documents[uid])
            self.stats.queries += 1
        self._round_trip()
        return doc

    def pull(self, filter_field: str, filter_value: Any,
             limit: Optional[int] = None) -> List[dict]:
        """Fetch up to ``limit`` documents matching ``field == value``.

        Used by the agent to pull schedulable units; each call is one round
        trip regardless of how many documents it returns (capped at
        ``batch_size``).
        """
        cap = self.batch_size if limit is None else min(limit, self.batch_size)
        with self._lock:
            matches = [
                dict(doc, uid=uid)
                for uid, doc in self._documents.items()
                if doc.get(filter_field) == filter_value
            ][:cap]
            self.stats.queries += 1
        self._round_trip()
        return matches

    def count(self, filter_field: str | None = None, filter_value: Any = None) -> int:
        """Count documents, optionally filtered (one round trip)."""
        with self._lock:
            if filter_field is None:
                result = len(self._documents)
            else:
                result = sum(1 for doc in self._documents.values()
                             if doc.get(filter_field) == filter_value)
            self.stats.queries += 1
        self._round_trip()
        return result

    def drop(self) -> None:
        """Remove all documents (session teardown)."""
        with self._lock:
            self._documents.clear()
