"""Pilot, managers, session — the client-side API, plus the framework facade.

The pilot-job pattern: the user first acquires resources by submitting a
*pilot* (a placeholder job) and then schedules application tasks (Compute
Units) onto the running pilot without further queue waits.  The classes
here mirror RADICAL-Pilot's public API surface:

``Session``          owns the coordination database,
``PilotDescription`` / ``Pilot``           the resource placeholder,
``PilotManager``     submits pilots,
``UnitManager``      submits Compute Units to pilots and waits for them,
``PilotFramework``   the :class:`~repro.frameworks.base.TaskFramework`
                     facade used by :mod:`repro.core` (one Compute Unit per
                     task, file-staging based data movement, no shuffle).
"""

from __future__ import annotations

import itertools
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from ..base import BroadcastHandle, RunMetrics, TaskFramework
from ..cluster import ClusterSpec
from ..executors import ExecutorBase
from ..serialization import nbytes_of, serialized_size
from ..shm import BlockRef
from .agent import PilotAgent
from .database import StateDatabase
from .units import ComputeUnit, ComputeUnitDescription, UnitState

__all__ = [
    "PilotDescription",
    "Pilot",
    "PilotManager",
    "UnitManager",
    "Session",
    "PilotFramework",
]

_pilot_counter = itertools.count()


@dataclass
class PilotDescription:
    """Resources requested for a pilot."""

    cores: int = 1
    runtime_minutes: int = 30
    resource: str = "local"

    def validate(self) -> None:
        """Raise :class:`ValueError` for impossible requests."""
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.runtime_minutes < 1:
            raise ValueError("runtime_minutes must be >= 1")


class Pilot:
    """An active resource placeholder with an agent running inside it."""

    def __init__(self, description: PilotDescription, database: StateDatabase,
                 executor: ExecutorBase | None = None) -> None:
        description.validate()
        self.uid = f"pilot.{next(_pilot_counter):04d}"
        self.description = description
        self.state = "ACTIVE"
        self.agent = PilotAgent(database, executor=executor, cores=description.cores)

    def cancel(self) -> None:
        """Shut the pilot down."""
        self.state = "CANCELED"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Pilot {self.uid} cores={self.description.cores} state={self.state}>"


class Session:
    """A client session owning the coordination database."""

    def __init__(self, database: StateDatabase | None = None) -> None:
        self.uid = f"session.{time.strftime('%Y%m%d%H%M%S')}"
        self.database = database or StateDatabase()
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        return self._closed

    def close(self) -> None:
        """Tear the session down (drops all database documents)."""
        self.database.drop()
        self._closed = True


class PilotManager:
    """Submits pilots within a session."""

    def __init__(self, session: Session, executor: ExecutorBase | None = None) -> None:
        self.session = session
        self._executor = executor
        self.pilots: List[Pilot] = []

    def submit_pilots(self, descriptions: PilotDescription | Sequence[PilotDescription]) -> List[Pilot]:
        """Submit one or more pilot descriptions; returns active pilots."""
        if isinstance(descriptions, PilotDescription):
            descriptions = [descriptions]
        submitted = [Pilot(desc, self.session.database, executor=self._executor)
                     for desc in descriptions]
        self.pilots.extend(submitted)
        return submitted


class UnitManager:
    """Submits Compute Units to pilots and collects their results."""

    def __init__(self, session: Session) -> None:
        self.session = session
        self.pilots: List[Pilot] = []
        self.units: Dict[str, ComputeUnit] = {}

    def add_pilots(self, pilots: Pilot | Sequence[Pilot]) -> None:
        """Attach pilots that will execute submitted units."""
        if isinstance(pilots, Pilot):
            pilots = [pilots]
        self.pilots.extend(pilots)

    def submit_units(self, descriptions: ComputeUnitDescription | Sequence[ComputeUnitDescription]) -> List[ComputeUnit]:
        """Register units with the database (client-side submission)."""
        if isinstance(descriptions, ComputeUnitDescription):
            descriptions = [descriptions]
        units = [ComputeUnit(desc) for desc in descriptions]
        documents = {}
        for unit in units:
            unit.advance(UnitState.PENDING_INPUT_STAGING)
            documents[unit.uid] = {"state": UnitState.PENDING_INPUT_STAGING.value,
                                   "name": unit.description.name}
            self.units[unit.uid] = unit
        if documents:
            self.session.database.insert_many(documents)
        return units

    def wait_units(self, units: Sequence[ComputeUnit] | None = None) -> List[ComputeUnit]:
        """Block until the given (or all) units reach a terminal state.

        The agents are driven synchronously from here: each attached
        pilot's agent drains the database queue.
        """
        if not self.pilots:
            raise RuntimeError("no pilots attached to this UnitManager")
        targets = list(units) if units is not None else list(self.units.values())
        for pilot in self.pilots:
            if pilot.state != "ACTIVE":
                continue
            pilot.agent.drain(self.units)
        still_pending = [u for u in targets if not u.is_terminal]
        if still_pending:
            raise RuntimeError(
                f"{len(still_pending)} units did not reach a terminal state"
            )
        return targets


class PilotFramework(TaskFramework):
    """RADICAL-Pilot-style framework substrate.

    Implements the uniform ``map_tasks`` surface by wrapping every task in
    a Compute Unit, submitting all of them at once (as the paper's
    throughput experiment does) and waiting for the pilot's agent to drain
    the queue.  There is no broadcast and no shuffle; ``stage_data`` writes
    a pickle to a shared scratch directory and returns its path — the
    filesystem-based communication pattern Table 1 lists as RP's
    limitation.

    Parameters
    ----------
    database_latency_s:
        Latency charged per database round trip (0 for unit tests; the
        perfmodel's calibrated value reproduces the paper's throughput
        ceiling).
    data_plane:
        ``"pickle"`` stages data as pickle files on the shared filesystem
        (RP's pattern); ``"shm"`` stages arrays into shared memory and
        hands units ``shm://`` refs — the on-node staging shortcut that
        removes both the file write and the payload pickling.  Unit
        *results* ride the same plane: output arrays are staged as
        shared segments and the driver resolves them zero-copy.
    store_capacity_bytes, spill_dir, spill_async, spill_queue_depth:
        Spill-tier configuration for the shm store, including the
        write-behind pipeline (see
        :class:`~repro.frameworks.base.TaskFramework`).  Streamed input
        chunks (:meth:`~repro.frameworks.shm.SharedMemoryStore.ingest`)
        share the same watermark, so an out-of-core campaign's units see
        ``shm://`` refs while the run metrics record ``bytes_ingested``
        and ``peak_resident_bytes``.
    """

    name = "pilot"

    def __init__(self, cluster: ClusterSpec | None = None,
                 executor: str | ExecutorBase = "threads",
                 workers: int | None = None,
                 database_latency_s: float = 0.0,
                 staging_dir: str | None = None,
                 data_plane: str = "pickle",
                 store_capacity_bytes: int | None = None,
                 spill_dir: str | None = None,
                 spill_async: bool = True,
                 spill_queue_depth: int = 4,
                 fault_policy=None, faults=None) -> None:
        super().__init__(cluster=cluster, executor=executor, workers=workers,
                         data_plane=data_plane,
                         store_capacity_bytes=store_capacity_bytes,
                         spill_dir=spill_dir, spill_async=spill_async,
                         spill_queue_depth=spill_queue_depth,
                         fault_policy=fault_policy, faults=faults)
        self._staged_refs: Dict[str, BlockRef] = {}
        self.session = Session(StateDatabase(latency_s=database_latency_s))
        self.pilot_manager = PilotManager(self.session, executor=self.executor)
        pilot_desc = PilotDescription(cores=max(1, self.executor.workers),
                                      resource=self.cluster.name)
        self.pilot = self.pilot_manager.submit_pilots(pilot_desc)[0]
        self.unit_manager = UnitManager(self.session)
        self.unit_manager.add_pilots(self.pilot)
        self._staging_dir = staging_dir or tempfile.mkdtemp(prefix="repro_pilot_")

    # ------------------------------------------------------------------ #
    # uniform TaskFramework surface
    # ------------------------------------------------------------------ #
    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run independent tasks, one Compute Unit each."""
        items = list(items)
        self.metrics = RunMetrics(tasks_submitted=len(items))
        fn, items = self._apply_data_plane(fn, items)
        start = time.perf_counter()
        if not items:
            return []
        descriptions = [
            ComputeUnitDescription(callable_=fn, args=(item,), name=f"task-{i}")
            for i, item in enumerate(items)
        ]
        stats = self.pilot.agent.stats
        base_retried = stats.tasks_retried
        base_lost = stats.tasks_lost
        base_recovery = stats.recovery_seconds
        base_speculated = stats.tasks_speculated
        base_wins = stats.speculation_wins
        base_local = stats.tasks_local
        base_remote = stats.tasks_remote
        base_avoided = stats.bytes_spill_reads_avoided
        base_dropped = stats.prefetch_hints_dropped
        units = list(self.unit_manager.submit_units(descriptions))
        self.unit_manager.wait_units(units)
        self._reschedule_failed_units(units)
        # the agent accumulated the executor's per-batch retry counts;
        # _collect_executor_bytes will add the *last* batch's totals
        # again, so record only the earlier batches here
        self._fault_counters.record(
            retried=(stats.tasks_retried - base_retried
                     - self.executor.total_tasks_retried),
            lost=(stats.tasks_lost - base_lost - self.executor.total_tasks_lost),
            seconds=(stats.recovery_seconds - base_recovery
                     - self.executor.total_recovery_seconds),
            speculated=(stats.tasks_speculated - base_speculated
                        - self.executor.total_tasks_speculated),
            wins=(stats.speculation_wins - base_wins
                  - self.executor.total_speculation_wins),
            local=(stats.tasks_local - base_local
                   - self.executor.total_tasks_local),
            remote=(stats.tasks_remote - base_remote
                    - self.executor.total_tasks_remote),
            bytes_avoided=(stats.bytes_spill_reads_avoided - base_avoided
                           - self.executor.total_bytes_spill_reads_avoided),
            hints_dropped=(stats.prefetch_hints_dropped - base_dropped
                           - self.executor.total_prefetch_hints_dropped))
        failed = [u for u in units if u.state == UnitState.FAILED]
        if failed:
            raise failed[0].exception  # surface the first task failure
        # on the shm plane unit results are staged as shared segments
        # (the output-staging analogue of shm:// input staging): the
        # refs on the units become zero-copy views here
        results = self._finish_results([u.result for u in units])
        wall = time.perf_counter() - start
        self.metrics.tasks_completed = len(results)
        self.metrics.wall_time_s = wall
        self.metrics.task_time_s = self.pilot.agent.stats.execution_time_s
        workers = max(1, self.executor.workers)
        self.metrics.overhead_s = max(0.0, wall - self.metrics.task_time_s / workers)
        self.metrics.record_event("database", self.session.database.stats.as_dict())
        self.metrics.record_event("agent", self.pilot.agent.stats.as_dict())
        self._collect_executor_bytes()
        return results

    def _reschedule_failed_units(self, units: List[ComputeUnit]) -> None:
        """Resubmit FAILED units as fresh Compute Units per the fault policy.

        RADICAL-Pilot's late binding means a failed unit is simply
        rescheduled onto the pilot — units are terminal once FAILED, so
        each retry is a *new* unit wrapping the same callable, walked
        through the full state model (and billed the same database round
        trips).  ``units`` is updated in place so the caller collects
        results positionally; exhausted retries leave the unit FAILED
        for the caller to surface.  Retry and loss counts land in the
        framework's fault counters, which ``_collect_executor_bytes``
        folds into the run metrics.
        """
        from ..faults import NO_RETRIES, WorkerLost
        from ..shm import BlockLost

        policy = self.fault_policy or NO_RETRIES
        attempts: Dict[int, int] = {}
        while True:
            failed = [(i, unit) for i, unit in enumerate(units)
                      if unit.state == UnitState.FAILED
                      and policy.should_retry(unit.exception, attempts.get(i, 0))]
            if not failed:
                return
            recover_start = time.perf_counter()
            lost = 0
            redo: List[ComputeUnitDescription] = []
            for i, unit in failed:
                exc = unit.exception
                lost += int(isinstance(exc, (WorkerLost, BlockLost)))
                if isinstance(exc, BlockLost) and self.store is not None:
                    self.store.recover_spilled_block(exc.segment)
                pause = policy.backoff_for(attempts.get(i, 0))
                if pause:
                    time.sleep(pause)
                attempts[i] = attempts.get(i, 0) + 1
                desc = unit.description
                redo.append(ComputeUnitDescription(
                    callable_=desc.callable_, args=desc.args, kwargs=desc.kwargs,
                    cores=desc.cores, name=f"{desc.name}~retry{attempts[i]}"))
            replacements = self.unit_manager.submit_units(redo)
            self._fault_counters.record(retried=len(redo), lost=lost,
                                        seconds=time.perf_counter() - recover_start)
            self.unit_manager.wait_units(replacements)
            for (i, _), replacement in zip(failed, replacements):
                units[i] = replacement

    def broadcast(self, value: Any) -> BroadcastHandle:
        """RP has no broadcast: data is staged to the shared filesystem.

        The returned handle carries the staged file's path in ``value`` is
        left untouched (tasks still receive the in-memory object since all
        substrates here share an address space), but the bytes are counted
        as *staged*, not broadcast.  On the shm plane the staging target
        is a shared-memory segment instead of a file: the handle carries
        the ref, only the ref's pickled bytes count as staged, and the
        array bytes are reported as shared.
        """
        ref = self._share_value(value)
        if ref is not None:
            path = f"shm://{ref.segment}"
            self._staged_refs[path] = ref
            handle = BroadcastHandle(value=ref, nbytes=serialized_size(ref),
                                     framework=self.name, bytes_shared=ref.nbytes)
            self.metrics.bytes_staged += handle.nbytes
            self.metrics.bytes_shared += ref.nbytes
            self.metrics.record_event("staged_file", path)
            return handle
        path = self.stage_data(value, label="broadcast")
        handle = BroadcastHandle(value=value, nbytes=nbytes_of(value), framework=self.name)
        self.metrics.bytes_staged += handle.nbytes
        self.metrics.record_event("staged_file", path)
        return handle

    # ------------------------------------------------------------------ #
    def stage_data(self, obj: Any, label: str = "data") -> str:
        """Stage ``obj`` for the units and return a locator for it.

        On the pickle plane this writes a pickle file to the shared
        scratch directory and returns its path (RP's file-staging
        pattern).  On the shm plane an array is registered in the shared
        store instead and an ``shm://<segment>`` locator is returned:
        only the ref's pickled size counts as staged data, the array
        bytes count as shared.
        """
        ref = self._share_value(obj)
        if ref is not None:
            path = f"shm://{ref.segment}"
            self._staged_refs[path] = ref
            self.metrics.bytes_staged += serialized_size(ref)
            self.metrics.bytes_shared += ref.nbytes
            return path
        os.makedirs(self._staging_dir, exist_ok=True)
        path = os.path.join(self._staging_dir, f"{label}_{time.monotonic_ns()}.pkl")
        with open(path, "wb") as fh:
            pickle.dump(obj, fh)
        self.metrics.bytes_staged += os.path.getsize(path)
        return path

    def load_staged(self, path: str) -> Any:
        """Read an object previously staged by :meth:`stage_data`."""
        if path.startswith("shm://"):
            ref = self._staged_refs.get(path)
            if ref is None:
                raise KeyError(f"unknown shared-memory staging locator {path!r}")
            return ref.resolve()
        with open(path, "rb") as fh:
            return pickle.load(fh)

    def close(self) -> None:
        """Cancel the pilot and close the session."""
        self.pilot.cancel()
        self.session.close()
        super().close()
