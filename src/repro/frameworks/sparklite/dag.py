"""Stage-oriented DAG scheduler.

Spark's ``DAGScheduler`` translates an RDD lineage into stages separated
by shuffle boundaries and executes them one after the other; a stage must
finish completely before the next one starts (the synchronization point
the paper contrasts with Dask's scheduler).  This module implements that
behaviour:

1. walk the lineage of the action's RDD and collect every un-materialized
   :class:`~repro.frameworks.sparklite.rdd.ShuffledRDD` ancestor in
   topological order,
2. for each, run a *map stage* over the parent's partitions, shuffle the
   keyed outputs into reduce-side buckets (measuring the shuffled bytes)
   and mark the ShuffledRDD materialized,
3. run the *result stage* over the final RDD's partitions.

Each stage is executed by the framework's task executor with one task per
partition.
"""

from __future__ import annotations

import time
from typing import Any, List, TYPE_CHECKING

from ..executors import ExecutorBase
from .rdd import RDD, ShuffledRDD
from .shuffle import shuffle_partitions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import SparkLiteContext

__all__ = ["StageInfo", "DAGScheduler"]


class StageInfo:
    """Book-keeping for one executed stage."""

    def __init__(self, stage_id: int, kind: str, rdd: RDD, num_tasks: int) -> None:
        self.stage_id = stage_id
        self.kind = kind           # "shuffle-map" or "result"
        self.rdd_id = rdd.id
        self.num_tasks = num_tasks
        self.duration_s = 0.0
        self.bytes_shuffled = 0

    def as_dict(self) -> dict:
        """Plain-dict view for metrics events."""
        return {
            "stage_id": self.stage_id,
            "kind": self.kind,
            "rdd_id": self.rdd_id,
            "num_tasks": self.num_tasks,
            "duration_s": self.duration_s,
            "bytes_shuffled": self.bytes_shuffled,
        }


class DAGScheduler:
    """Executes RDD lineages stage by stage."""

    def __init__(self, context: "SparkLiteContext", executor: ExecutorBase) -> None:
        self.context = context
        self.executor = executor
        self.stages: List[StageInfo] = []
        self._stage_counter = 0

    # ------------------------------------------------------------------ #
    # partition access used by narrow RDD lineage
    # ------------------------------------------------------------------ #
    def partition_of(self, rdd: RDD, index: int) -> List[Any]:
        """Contents of ``rdd`` partition ``index`` honouring the cache."""
        if rdd.is_cached and rdd._cached_partitions is not None:
            cached = rdd._cached_partitions[index]
            if cached is not None:
                return cached
        data = rdd.compute_partition(index)
        if rdd.is_cached:
            if rdd._cached_partitions is None:
                rdd._cached_partitions = [None] * rdd.num_partitions  # type: ignore[list-item]
            rdd._cached_partitions[index] = data
        return data

    # ------------------------------------------------------------------ #
    def run(self, rdd: RDD) -> List[List[Any]]:
        """Materialize every partition of ``rdd`` and return them in order."""
        for shuffle_rdd in self._pending_shuffles(rdd):
            self._run_shuffle_stage(shuffle_rdd)
        return self._run_result_stage(rdd)

    # ------------------------------------------------------------------ #
    def _pending_shuffles(self, rdd: RDD) -> List[ShuffledRDD]:
        """Un-materialized ShuffledRDD ancestors in dependency order."""
        ordered: List[ShuffledRDD] = []
        seen: set[int] = set()

        def visit(node: RDD) -> None:
            if node.id in seen:
                return
            seen.add(node.id)
            for parent in node.parents:
                visit(parent)
            if isinstance(node, ShuffledRDD) and node._materialized is None:
                ordered.append(node)

        visit(rdd)
        return ordered

    def _run_stage_tasks(self, rdd: RDD) -> List[List[Any]]:
        """One task per partition of ``rdd``, run through the executor."""
        indices = list(range(rdd.num_partitions))
        return self.executor.map_tasks(lambda idx: self.partition_of(rdd, idx), indices)

    def _run_shuffle_stage(self, shuffled: ShuffledRDD) -> None:
        parent = shuffled.parents[0]
        self._stage_counter += 1
        info = StageInfo(self._stage_counter, "shuffle-map", parent, parent.num_partitions)
        start = time.perf_counter()
        map_outputs = self._run_stage_tasks(parent)
        result = shuffle_partitions(map_outputs, shuffled.partitioner)
        shuffled._materialized = result.buckets
        info.duration_s = time.perf_counter() - start
        info.bytes_shuffled = result.bytes_shuffled
        self.stages.append(info)
        self.context.metrics.bytes_shuffled += result.bytes_shuffled
        self.context.metrics.record_event("stage", info.as_dict())

    def _run_result_stage(self, rdd: RDD) -> List[List[Any]]:
        self._stage_counter += 1
        info = StageInfo(self._stage_counter, "result", rdd, rdd.num_partitions)
        start = time.perf_counter()
        partitions = self._run_stage_tasks(rdd)
        info.duration_s = time.perf_counter() - start
        self.stages.append(info)
        self.context.metrics.record_event("stage", info.as_dict())
        self.context.metrics.tasks_submitted += rdd.num_partitions
        self.context.metrics.tasks_completed += rdd.num_partitions
        return partitions
