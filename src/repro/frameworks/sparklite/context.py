"""SparkLiteContext: the driver-side entry point (``SparkContext`` analogue)."""

from __future__ import annotations

import time
from typing import Any, Callable, List, Sequence

from ..base import RunMetrics, TaskFramework
from ..cluster import ClusterSpec
from ..executors import ExecutorBase
from .broadcast import Broadcast
from .dag import DAGScheduler
from .rdd import ParallelCollectionRDD, RDD

__all__ = ["SparkLiteContext"]


class SparkLiteContext(TaskFramework):
    """Spark-style framework substrate.

    Provides the RDD API (``parallelize`` + transformations/actions), the
    stage-oriented DAG scheduler, hash shuffles, broadcast variables and
    in-memory caching.  Also implements the uniform
    :class:`~repro.frameworks.base.TaskFramework` surface (``map_tasks``,
    ``broadcast``) by translating it to RDD operations, exactly like the
    paper's implementations do ("create an RDD with one partition per
    task; the tasks are executed in a map function").

    Parameters
    ----------
    cluster, executor, workers:
        See :class:`~repro.frameworks.base.TaskFramework`.  The executor
        should be ``"serial"`` or ``"threads"``; closures in RDD lineages
        are not picklable, mirroring PySpark's own reliance on cloudpickle.
    default_parallelism:
        Default number of partitions for ``parallelize`` when the caller
        does not specify one.
    data_plane:
        ``"pickle"`` or ``"shm"``; with ``"shm"`` broadcast variables,
        ``map_tasks`` payloads *and collected results* carry
        shared-memory refs instead of array bytes (see
        :mod:`repro.frameworks.shm`).
    store_capacity_bytes, spill_dir, spill_async, spill_queue_depth:
        Spill-tier configuration for the shm store, including the
        write-behind pipeline (see
        :class:`~repro.frameworks.base.TaskFramework`).  The same store
        serves streamed inputs: chunk files ingested through
        :meth:`~repro.frameworks.shm.SharedMemoryStore.ingest` land as
        dedup-fingerprinted blocks under the same watermark, and the run
        metrics report ``bytes_ingested`` / ``peak_resident_bytes``.
    fault_policy, faults:
        Resilience configuration (see
        :class:`~repro.frameworks.base.TaskFramework`); stage tasks run
        on the executor, whose retry loop re-executes lost partitions —
        Spark's lost-task replay at the same granularity.
    """

    name = "sparklite"

    def __init__(self, cluster: ClusterSpec | None = None,
                 executor: str | ExecutorBase = "threads",
                 workers: int | None = None,
                 default_parallelism: int | None = None,
                 data_plane: str = "pickle",
                 store_capacity_bytes: int | None = None,
                 spill_dir: str | None = None,
                 spill_async: bool = True,
                 spill_queue_depth: int = 4,
                 fault_policy=None, faults=None) -> None:
        super().__init__(cluster=cluster, executor=executor, workers=workers,
                         data_plane=data_plane,
                         store_capacity_bytes=store_capacity_bytes,
                         spill_dir=spill_dir, spill_async=spill_async,
                         spill_queue_depth=spill_queue_depth,
                         fault_policy=fault_policy, faults=faults)
        self.default_parallelism = default_parallelism or max(2, self.executor.workers)
        self._scheduler = DAGScheduler(self, self.executor)
        self._rdd_counter = 0
        self._broadcasts: List[Broadcast] = []

    # ------------------------------------------------------------------ #
    # RDD API
    # ------------------------------------------------------------------ #
    def _next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    def parallelize(self, data: Sequence[Any], num_partitions: int | None = None) -> RDD:
        """Distribute a driver-side collection as an RDD."""
        parts = num_partitions or self.default_parallelism
        return ParallelCollectionRDD(self, data, parts)

    def broadcast(self, value: Any) -> Broadcast:  # type: ignore[override]
        """Create a broadcast variable (size recorded in the metrics).

        On the shm data plane the variable holds a shared-memory ref: the
        broadcast volume recorded is the ref's pickled size, with the
        array bytes accounted as shared.
        """
        store = self.store if self.data_plane == "shm" else None
        bc = Broadcast(value, store=store)
        self._broadcasts.append(bc)
        self.metrics.bytes_broadcast += bc.nbytes
        self.metrics.bytes_shared += bc.bytes_shared
        return bc

    @property
    def stages(self) -> list:
        """Stage book-keeping from the scheduler (for tests and reports)."""
        return self._scheduler.stages

    # ------------------------------------------------------------------ #
    # uniform TaskFramework surface
    # ------------------------------------------------------------------ #
    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run a bag of independent tasks as a map-only Spark job.

        One partition per task, exactly as the paper's PSA implementation
        creates "an RDD with one partition per task".
        """
        items = list(items)
        self.metrics = RunMetrics()
        fn, items = self._apply_data_plane(fn, items)
        start = time.perf_counter()
        if not items:
            return []
        rdd = self.parallelize(items, num_partitions=len(items)).map(fn)
        results = rdd.collect()
        wall = time.perf_counter() - start
        # collect() hands back ref payloads on the shm plane; resolve
        # them zero-copy and account the result-direction byte split
        results = self._finish_results(results)
        self.metrics.wall_time_s = wall
        self.metrics.task_time_s = self.executor.total_task_time
        workers = max(1, self.executor.workers)
        self.metrics.overhead_s = max(0.0, wall - self.metrics.task_time_s / workers)
        self._collect_executor_bytes()
        return results

    def run_map_reduce(self, items: Sequence[Any],
                       map_fn: Callable[[Any], Sequence[tuple]],
                       reduce_fn: Callable[[Any, Any], Any],
                       num_partitions: int | None = None) -> dict:
        """Convenience MapReduce: flatMap to (key, value) pairs, reduceByKey.

        Returns the reduced key/value pairs as a dict.  Used by the Leaflet
        Finder approaches that need a real shuffle between the edge
        discovery and component-merge phases.
        """
        items = list(items)
        self.metrics = RunMetrics()
        start = time.perf_counter()
        if not items:
            return {}
        rdd = self.parallelize(items, num_partitions=len(items))
        reduced = rdd.flatMap(map_fn).reduceByKey(reduce_fn,
                                                  num_partitions=num_partitions)
        output = dict(reduced.collect())
        self.metrics.wall_time_s = time.perf_counter() - start
        return output
