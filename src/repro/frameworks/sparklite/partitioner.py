"""Partitioners: how keyed records map to reduce-side partitions.

Besides the keyed partitioners this module provides
:func:`split_array_into_partitions`, the data-plane-aware variant of
:func:`split_into_partitions` used to chunk large position/trajectory
arrays: on the shm plane it slices a
:class:`~repro.frameworks.shm.BlockRef` into sub-refs (offset arithmetic,
zero bytes copied) instead of materializing per-partition array copies.
"""

from __future__ import annotations

from typing import Any, Hashable, List

import numpy as np

from ..shm import BlockRef

__all__ = [
    "HashPartitioner",
    "RangePartitioner",
    "split_into_partitions",
    "split_array_into_partitions",
]


class HashPartitioner:
    """Assign a key to partition ``hash(key) % num_partitions``.

    This is Spark's default partitioner and the one the paper's shuffles
    rely on (hash/sort-based shuffle, Table 1).
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = int(num_partitions)

    def partition_for(self, key: Hashable) -> int:
        """Partition index for ``key``."""
        return hash(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, HashPartitioner)
                and other.num_partitions == self.num_partitions)


class RangePartitioner:
    """Assign ordered keys to contiguous ranges (for sorted outputs)."""

    def __init__(self, boundaries: list) -> None:
        self.boundaries = sorted(boundaries)
        self.num_partitions = len(self.boundaries) + 1

    def partition_for(self, key: Any) -> int:
        """Partition index for ``key`` by binary placement among boundaries."""
        for i, bound in enumerate(self.boundaries):
            if key <= bound:
                return i
        return len(self.boundaries)


def split_into_partitions(data: list, num_partitions: int) -> list:
    """Split a list into ``num_partitions`` nearly equal contiguous chunks.

    Mirrors Spark's ``parallelize`` slicing: the first ``len % n`` chunks
    get one extra element, every chunk is contiguous, order is preserved.
    Empty partitions are allowed when there are fewer items than
    partitions.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    data = list(data)
    n = len(data)
    base, extra = divmod(n, num_partitions)
    partitions = []
    start = 0
    for i in range(num_partitions):
        size = base + (1 if i < extra else 0)
        partitions.append(data[start:start + size])
        start += size
    return partitions


def split_array_into_partitions(data: "np.ndarray | BlockRef",
                                num_partitions: int) -> List:
    """Split an array (or shared-memory ref) into contiguous row chunks.

    Chunk sizes follow the :func:`split_into_partitions` rule.  NumPy
    inputs yield views; :class:`~repro.frameworks.shm.BlockRef` inputs
    yield sub-refs via :meth:`~repro.frameworks.shm.BlockRef.slice_rows`,
    so a broadcast-once array can be partitioned across tasks without a
    single byte being copied or pickled.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    if isinstance(data, BlockRef):
        n = data.shape[0] if data.shape else 0
        slicer = data.slice_rows
    else:
        data = np.asarray(data)
        n = data.shape[0] if data.ndim else 0
        def slicer(start: int, stop: int):
            return data[start:stop]
    base, extra = divmod(n, num_partitions)
    partitions = []
    start = 0
    for i in range(num_partitions):
        size = base + (1 if i < extra else 0)
        partitions.append(slicer(start, start + size))
        start += size
    return partitions
