"""Partitioners: how keyed records map to reduce-side partitions."""

from __future__ import annotations

from typing import Any, Hashable

__all__ = ["HashPartitioner", "RangePartitioner", "split_into_partitions"]


class HashPartitioner:
    """Assign a key to partition ``hash(key) % num_partitions``.

    This is Spark's default partitioner and the one the paper's shuffles
    rely on (hash/sort-based shuffle, Table 1).
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = int(num_partitions)

    def partition_for(self, key: Hashable) -> int:
        """Partition index for ``key``."""
        return hash(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, HashPartitioner)
                and other.num_partitions == self.num_partitions)


class RangePartitioner:
    """Assign ordered keys to contiguous ranges (for sorted outputs)."""

    def __init__(self, boundaries: list) -> None:
        self.boundaries = sorted(boundaries)
        self.num_partitions = len(self.boundaries) + 1

    def partition_for(self, key: Any) -> int:
        """Partition index for ``key`` by binary placement among boundaries."""
        for i, bound in enumerate(self.boundaries):
            if key <= bound:
                return i
        return len(self.boundaries)


def split_into_partitions(data: list, num_partitions: int) -> list:
    """Split a list into ``num_partitions`` nearly equal contiguous chunks.

    Mirrors Spark's ``parallelize`` slicing: the first ``len % n`` chunks
    get one extra element, every chunk is contiguous, order is preserved.
    Empty partitions are allowed when there are fewer items than
    partitions.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    data = list(data)
    n = len(data)
    base, extra = divmod(n, num_partitions)
    partitions = []
    start = 0
    for i in range(num_partitions):
        size = base + (1 if i < extra else 0)
        partitions.append(data[start:start + size])
        start += size
    return partitions
