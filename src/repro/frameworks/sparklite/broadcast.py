"""Broadcast variables.

Spark ships broadcast values to every executor once (torrent-style) rather
than with every task; the paper's Leaflet Finder approach 1 broadcasts the
whole physical system this way.  Our :class:`Broadcast` keeps the value in
the driver's address space but records the bytes that a distributed
deployment would have pushed to each node, which is what the Figure 8
broadcast-time breakdown is computed from.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..serialization import nbytes_of, serialized_size
from ..shm import SharedMemoryStore

__all__ = ["Broadcast"]


class Broadcast:
    """A read-only variable shared with all tasks of a Spark-like job.

    When constructed with a :class:`~repro.frameworks.shm.SharedMemoryStore`
    (the shm data plane) an array value is registered in the store once
    and ``value`` yields the :class:`~repro.frameworks.shm.BlockRef`; the
    bytes that must move per node collapse to the ref's pickled size and
    the array bytes are reported via ``bytes_shared`` instead — the
    zero-copy equivalent of Spark's executor-side broadcast block cache.
    """

    _counter = 0

    def __init__(self, value: Any, *, measure_pickle: bool = False,
                 store: SharedMemoryStore | None = None) -> None:
        Broadcast._counter += 1
        self.id = Broadcast._counter
        #: array bytes resident in shared memory (shm plane only)
        self.bytes_shared = 0
        if (store is not None and isinstance(value, np.ndarray)
                and value.nbytes > 0):
            ref = store.put(value)
            self._value = ref
            self.nbytes = serialized_size(ref)
            self.bytes_shared = ref.nbytes
        else:
            self._value = value
            #: bytes that must reach every worker node
            self.nbytes = serialized_size(value) if measure_pickle else nbytes_of(value)
        self._destroyed = False

    @property
    def value(self) -> Any:
        """The broadcast value; raises if the broadcast was destroyed."""
        if self._destroyed:
            raise RuntimeError(f"broadcast {self.id} was destroyed")
        return self._value

    def unpersist(self) -> None:
        """Release executor-side copies (driver copy retained)."""
        # in-process implementation: nothing to do beyond bookkeeping

    def destroy(self) -> None:
        """Release all copies; the value becomes unusable."""
        self._destroyed = True
        self._value = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Broadcast id={self.id} nbytes={self.nbytes}>"
