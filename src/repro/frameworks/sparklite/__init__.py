"""sparklite: a Spark-style substrate (RDDs, stages, shuffle, broadcast)."""

from .broadcast import Broadcast
from .context import SparkLiteContext
from .dag import DAGScheduler, StageInfo
from .partitioner import HashPartitioner, RangePartitioner, split_into_partitions
from .rdd import RDD, MapPartitionsRDD, ParallelCollectionRDD, ShuffledRDD, UnionRDD
from .shuffle import ShuffleResult, combine_by_key, shuffle_partitions

__all__ = [
    "SparkLiteContext",
    "RDD",
    "ParallelCollectionRDD",
    "MapPartitionsRDD",
    "ShuffledRDD",
    "UnionRDD",
    "Broadcast",
    "DAGScheduler",
    "StageInfo",
    "HashPartitioner",
    "RangePartitioner",
    "split_into_partitions",
    "ShuffleResult",
    "shuffle_partitions",
    "combine_by_key",
]
