"""Hash-based shuffle.

A shuffle re-distributes keyed records from map-side partitions to
reduce-side partitions owned by (possibly different) workers.  Spark
writes map outputs to local disk and serves them to reducers; the cost the
paper cares about is the volume of data crossing the network.  This module
implements the data movement in memory and measures that volume.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence, Tuple

from ..serialization import nbytes_of
from .partitioner import HashPartitioner

__all__ = ["ShuffleResult", "shuffle_partitions", "combine_by_key"]


class ShuffleResult:
    """Output of a shuffle: reduce-side buckets plus measured volume."""

    def __init__(self, buckets: List[List[Tuple[Any, Any]]], bytes_shuffled: int) -> None:
        self.buckets = buckets
        self.bytes_shuffled = bytes_shuffled

    @property
    def num_partitions(self) -> int:
        """Number of reduce-side partitions."""
        return len(self.buckets)


def shuffle_partitions(map_outputs: Sequence[Iterable[Tuple[Any, Any]]],
                       partitioner: HashPartitioner) -> ShuffleResult:
    """Redistribute keyed records into reduce-side buckets.

    Parameters
    ----------
    map_outputs:
        One iterable of ``(key, value)`` records per map-side partition.
    partitioner:
        Decides the destination bucket of every record.

    Returns
    -------
    ShuffleResult
        Reduce-side buckets (lists of ``(key, value)`` records) and the
        total shuffled bytes (size of all records; in a distributed
        deployment every record leaves its map task's node unless it
        happens to land on the same node — we charge the conservative
        full volume, which matches how the paper reports shuffle sizes).
    """
    buckets: List[List[Tuple[Any, Any]]] = [[] for _ in range(partitioner.num_partitions)]
    bytes_shuffled = 0
    for partition in map_outputs:
        for record in partition:
            if not isinstance(record, tuple) or len(record) != 2:
                raise TypeError(
                    f"shuffle records must be (key, value) tuples, got {record!r}"
                )
            key, value = record
            bucket = partitioner.partition_for(key)
            buckets[bucket].append((key, value))
            bytes_shuffled += nbytes_of(value) + nbytes_of(key)
    return ShuffleResult(buckets, bytes_shuffled)


def combine_by_key(bucket: Iterable[Tuple[Any, Any]],
                   create: Callable[[Any], Any],
                   merge_value: Callable[[Any, Any], Any]) -> List[Tuple[Any, Any]]:
    """Reduce-side combine: fold all values of each key within one bucket."""
    state: dict = {}
    for key, value in bucket:
        if key in state:
            state[key] = merge_value(state[key], value)
        else:
            state[key] = create(value)
    return list(state.items())
