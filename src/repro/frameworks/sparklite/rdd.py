"""Resilient Distributed Dataset (RDD) abstraction.

A faithful-in-architecture, small-in-code re-implementation of the Spark
programming model the paper uses:

* RDDs are **lazy**: transformations (``map``, ``flatMap``, ``filter``,
  ``mapPartitions``, ``reduceByKey``, ...) only record lineage,
* **actions** (``collect``, ``count``, ``reduce``, ...) hand the lineage to
  the context's DAG scheduler, which splits it into **stages** at shuffle
  boundaries and executes stage by stage with a barrier in between
  (Spark's stage-oriented scheduling, contrasted with Dask's
  dependency-driven scheduling in section 3.4 of the paper),
* **narrow** transformations are pipelined inside one stage; **wide**
  transformations (``reduceByKey``, ``groupByKey``, ``partitionBy``)
  introduce a hash shuffle whose volume is measured,
* ``cache()``/``persist()`` keep materialized partitions in memory for
  reuse across jobs.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .partitioner import HashPartitioner, split_into_partitions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import SparkLiteContext

__all__ = [
    "RDD",
    "ParallelCollectionRDD",
    "MapPartitionsRDD",
    "ShuffledRDD",
    "UnionRDD",
]


class RDD:
    """Base class: lineage node with ``num_partitions`` partitions."""

    def __init__(self, context: "SparkLiteContext", num_partitions: int,
                 parents: Sequence["RDD"] = ()) -> None:
        if num_partitions < 1:
            raise ValueError("an RDD needs at least one partition")
        self.context = context
        self.num_partitions = int(num_partitions)
        self.parents = list(parents)
        self.id = context._next_rdd_id()
        self._cached = False
        self._cached_partitions: Optional[List[List[Any]]] = None

    # ------------------------------------------------------------------ #
    # plumbing used by the scheduler
    # ------------------------------------------------------------------ #
    def compute_partition(self, index: int) -> List[Any]:
        """Compute the contents of partition ``index`` (narrow lineage only)."""
        raise NotImplementedError

    def getNumPartitions(self) -> int:
        """Number of partitions (Spark API spelling)."""
        return self.num_partitions

    @property
    def is_cached(self) -> bool:
        """True when this RDD's partitions should be kept after first use."""
        return self._cached

    # ------------------------------------------------------------------ #
    # transformations (lazy)
    # ------------------------------------------------------------------ #
    def mapPartitionsWithIndex(self, fn: Callable[[int, Iterable[Any]], Iterable[Any]]) -> "RDD":
        """Apply ``fn(partition_index, iterator)`` to every partition."""
        return MapPartitionsRDD(self, fn)

    def mapPartitions(self, fn: Callable[[Iterable[Any]], Iterable[Any]]) -> "RDD":
        """Apply ``fn(iterator)`` to every partition."""
        return MapPartitionsRDD(self, lambda _idx, it: fn(it))

    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        """Element-wise transformation."""
        return MapPartitionsRDD(self, lambda _idx, it: (fn(x) for x in it))

    def flatMap(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        """Element-wise transformation producing zero or more outputs each."""
        return MapPartitionsRDD(
            self, lambda _idx, it: itertools.chain.from_iterable(fn(x) for x in it)
        )

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        """Keep elements satisfying ``predicate``."""
        return MapPartitionsRDD(self, lambda _idx, it: (x for x in it if predicate(x)))

    def glom(self) -> "RDD":
        """Turn each partition into a single list element."""
        return MapPartitionsRDD(self, lambda _idx, it: [list(it)])

    def keys(self) -> "RDD":
        """Keys of a pair RDD."""
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        """Values of a pair RDD."""
        return self.map(lambda kv: kv[1])

    def mapValues(self, fn: Callable[[Any], Any]) -> "RDD":
        """Transform the value of every (key, value) pair."""
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs (partitions of self first)."""
        return UnionRDD(self, other)

    def repartition(self, num_partitions: int) -> "RDD":
        """Re-distribute elements round-robin over ``num_partitions`` (shuffle)."""
        keyed = self.mapPartitionsWithIndex(
            lambda idx, it: ((i % num_partitions, x) for i, x in enumerate(it, start=idx))
        )
        shuffled = ShuffledRDD(keyed, HashPartitioner(num_partitions))
        return shuffled.values()

    def partitionBy(self, num_partitions: int) -> "RDD":
        """Hash-partition a pair RDD by key (shuffle)."""
        return ShuffledRDD(self, HashPartitioner(num_partitions))

    def groupByKey(self, num_partitions: int | None = None) -> "RDD":
        """Group values by key into lists (shuffle)."""
        parts = num_partitions or self.num_partitions
        shuffled = ShuffledRDD(self, HashPartitioner(parts))
        return shuffled.mapPartitions(_group_bucket)

    def reduceByKey(self, fn: Callable[[Any, Any], Any],
                    num_partitions: int | None = None) -> "RDD":
        """Combine all values of a key with ``fn`` (shuffle with map-side combine)."""
        parts = num_partitions or self.num_partitions
        # map-side combine shrinks the shuffle, as in Spark
        combined = self.mapPartitions(lambda it: _combine_local(it, fn))
        shuffled = ShuffledRDD(combined, HashPartitioner(parts))
        return shuffled.mapPartitions(lambda it: _combine_local(it, fn))

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def cache(self) -> "RDD":
        """Keep materialized partitions in memory after the first job."""
        self._cached = True
        return self

    persist = cache

    def unpersist(self) -> "RDD":
        """Drop cached partitions."""
        self._cached = False
        self._cached_partitions = None
        return self

    # ------------------------------------------------------------------ #
    # actions (eager — trigger the DAG scheduler)
    # ------------------------------------------------------------------ #
    def collect(self) -> List[Any]:
        """Materialize every element on the driver."""
        partitions = self.context._scheduler.run(self)
        return [x for part in partitions for x in part]

    def count(self) -> int:
        """Number of elements."""
        partitions = self.context._scheduler.run(self.mapPartitions(lambda it: [sum(1 for _ in it)]))
        return int(sum(x for part in partitions for x in part))

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Fold all elements with an associative binary function."""
        partials = self.mapPartitions(lambda it: _reduce_iter(it, fn)).collect()
        if not partials:
            raise ValueError("reduce() of an empty RDD")
        result = partials[0]
        for value in partials[1:]:
            result = fn(result, value)
        return result

    def sum(self) -> Any:
        """Sum of all elements."""
        partials = self.mapPartitions(lambda it: [sum(it)]).collect()
        return sum(partials)

    def take(self, n: int) -> List[Any]:
        """First ``n`` elements (materializes the RDD)."""
        return self.collect()[:n]

    def first(self) -> Any:
        """First element."""
        taken = self.take(1)
        if not taken:
            raise ValueError("first() of an empty RDD")
        return taken[0]

    def countByKey(self) -> dict:
        """Count occurrences of each key of a pair RDD."""
        counts: dict = {}
        for key, _value in self.collect():
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} id={self.id} partitions={self.num_partitions}>"


class ParallelCollectionRDD(RDD):
    """An RDD created from a driver-side collection (``parallelize``)."""

    def __init__(self, context: "SparkLiteContext", data: Sequence[Any],
                 num_partitions: int) -> None:
        super().__init__(context, num_partitions)
        self._partitions = split_into_partitions(list(data), num_partitions)

    def compute_partition(self, index: int) -> List[Any]:
        return list(self._partitions[index])


class MapPartitionsRDD(RDD):
    """Narrow transformation: pipelined with its parent inside one stage."""

    def __init__(self, parent: RDD, fn: Callable[[int, Iterable[Any]], Iterable[Any]]) -> None:
        super().__init__(parent.context, parent.num_partitions, parents=[parent])
        self._fn = fn

    def compute_partition(self, index: int) -> List[Any]:
        parent = self.parents[0]
        parent_data = self.context._scheduler.partition_of(parent, index)
        return list(self._fn(index, iter(parent_data)))


class ShuffledRDD(RDD):
    """Wide transformation: requires all parent partitions (stage boundary)."""

    def __init__(self, parent: RDD, partitioner: HashPartitioner) -> None:
        super().__init__(parent.context, partitioner.num_partitions, parents=[parent])
        self.partitioner = partitioner
        self._materialized: Optional[List[List[Tuple[Any, Any]]]] = None

    def compute_partition(self, index: int) -> List[Any]:
        if self._materialized is None:
            raise RuntimeError(
                "ShuffledRDD partitions requested before its shuffle stage ran; "
                "this is a scheduler bug"
            )
        return list(self._materialized[index])


class UnionRDD(RDD):
    """Concatenation of two RDDs; partitions of the first parent come first."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.context, left.num_partitions + right.num_partitions,
                         parents=[left, right])

    def compute_partition(self, index: int) -> List[Any]:
        left, right = self.parents
        if index < left.num_partitions:
            return self.context._scheduler.partition_of(left, index)
        return self.context._scheduler.partition_of(right, index - left.num_partitions)


# ---------------------------------------------------------------------- #
# helpers (module level so they stay picklable for process executors)
# ---------------------------------------------------------------------- #
def _combine_local(records: Iterable[Tuple[Any, Any]],
                   fn: Callable[[Any, Any], Any]) -> List[Tuple[Any, Any]]:
    state: dict = {}
    for key, value in records:
        if key in state:
            state[key] = fn(state[key], value)
        else:
            state[key] = value
    return list(state.items())


def _group_bucket(records: Iterable[Tuple[Any, Any]]) -> List[Tuple[Any, List[Any]]]:
    state: dict = {}
    for key, value in records:
        state.setdefault(key, []).append(value)
    return list(state.items())


def _reduce_iter(iterator: Iterable[Any], fn: Callable[[Any, Any], Any]) -> List[Any]:
    iterator = iter(iterator)
    try:
        acc = next(iterator)
    except StopIteration:
        return []
    for value in iterator:
        acc = fn(acc, value)
    return [acc]
