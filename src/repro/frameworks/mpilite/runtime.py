"""SPMD runtime (``mpiexec`` analogue) and the MPI framework facade.

:func:`run_spmd` launches ``size`` ranks of the same function, each on its
own thread with a :class:`~repro.frameworks.mpilite.comm.Communicator`,
and returns the per-rank return values.  :class:`MPIFramework` wraps that
runtime in the uniform :class:`~repro.frameworks.base.TaskFramework`
surface so the algorithms in :mod:`repro.core` can treat MPI as just
another substrate — with the caveats the paper lists: explicit
communication, no shuffle abstraction, static work partitioning.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence

from ..base import BroadcastHandle, RunMetrics, TaskFramework
from ..cluster import ClusterSpec
from ..executors import ExecutorBase
from ..serialization import nbytes_of, serialized_size
from ..sparklite.partitioner import split_into_partitions
from .comm import Communicator, WorldContext

__all__ = ["SPMDError", "run_spmd", "MPIFramework"]


class SPMDError(RuntimeError):
    """Raised when one or more ranks of an SPMD run failed."""

    def __init__(self, failures: List[tuple]) -> None:
        self.failures = failures
        summary = "; ".join(f"rank {rank}: {exc!r}" for rank, exc in failures[:3])
        super().__init__(f"{len(failures)} rank(s) failed: {summary}")


def run_spmd(fn: Callable[..., Any], size: int, *args: Any,
             context: WorldContext | None = None, **kwargs: Any) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks and collect results.

    Ranks execute on threads sharing a :class:`WorldContext`; the function
    must use the provided communicator for any cross-rank data exchange.
    Exceptions on any rank abort the run with :class:`SPMDError` (after all
    ranks have stopped), mirroring an MPI job abort.
    """
    import threading

    if size < 1:
        raise ValueError("size must be >= 1")
    ctx = context or WorldContext(size=size)
    if ctx.size != size:
        raise ValueError("context size does not match requested size")
    results: List[Any] = [None] * size
    failures: List[tuple] = []
    failure_lock = threading.Lock()

    def rank_main(rank: int) -> None:
        comm = Communicator(rank, ctx)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - collected and re-raised below
            with failure_lock:
                failures.append((rank, exc))
            # release peers blocked on the barrier so the job can abort
            ctx.barrier.abort()

    if size == 1:
        # fast path: run in the calling thread (keeps tracebacks simple)
        rank_main(0)
    else:
        threads = [threading.Thread(target=rank_main, args=(r,), name=f"rank-{r}")
                   for r in range(size)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    if failures:
        raise SPMDError(sorted(failures, key=lambda f: f[0]))
    return results


class MPIFramework(TaskFramework):
    """MPI-style framework substrate.

    ``map_tasks`` statically partitions the task list over the ranks
    (contiguous blocks, as an SPMD program would), each rank executes its
    block, and rank 0 gathers the results — the structure of the paper's
    MPI4py implementations of PSA and the Leaflet Finder.

    ``run_spmd`` exposes the raw SPMD runtime for algorithms that need
    explicit collectives (Leaflet Finder approaches with ``Bcast``).

    Data-plane, spill-tier (``store_capacity_bytes`` and friends) and
    resilience options are forwarded to
    :class:`~repro.frameworks.base.TaskFramework` unchanged.  On the shm
    plane the store also backs streamed ingestion
    (:meth:`~repro.frameworks.shm.SharedMemoryStore.ingest`) — ranks
    resolve chunk refs zero-copy, and the run metrics report
    ``bytes_ingested`` / ``peak_resident_bytes``.
    """

    name = "mpilite"

    # tasks run inside SPMD rank threads, not on self.executor
    _executor_runs_tasks = False

    def __init__(self, cluster: ClusterSpec | None = None,
                 executor: str | ExecutorBase = "threads",
                 workers: int | None = None,
                 ranks: int | None = None,
                 data_plane: str = "pickle",
                 store_capacity_bytes: int | None = None,
                 spill_dir: str | None = None,
                 spill_async: bool = True,
                 spill_queue_depth: int = 4,
                 fault_policy=None, faults=None) -> None:
        super().__init__(cluster=cluster, executor=executor, workers=workers,
                         data_plane=data_plane,
                         store_capacity_bytes=store_capacity_bytes,
                         spill_dir=spill_dir, spill_async=spill_async,
                         spill_queue_depth=spill_queue_depth,
                         fault_policy=fault_policy, faults=faults)
        self.ranks = ranks or max(1, self.executor.workers)
        self.last_context: Optional[WorldContext] = None

    def _make_context(self, size: int) -> WorldContext:
        """A world context wired to the active data plane's transport."""
        store = self.store if self.data_plane == "shm" else None
        return WorldContext(size=size, store=store)

    # ------------------------------------------------------------------ #
    def run_spmd(self, fn: Callable[..., Any], *args: Any, ranks: int | None = None,
                 **kwargs: Any) -> List[Any]:
        """Run an SPMD function on this framework's ranks."""
        size = ranks or self.ranks
        context = self._make_context(size)
        self.last_context = context
        start = time.perf_counter()
        results = run_spmd(fn, size, *args, context=context, **kwargs)
        wall = time.perf_counter() - start
        self.metrics.wall_time_s += wall
        self.metrics.bytes_shuffled += context.bytes_communicated
        self.metrics.bytes_shared += context.bytes_shared
        self.metrics.record_event("spmd", {
            "ranks": size,
            "wall_time_s": wall,
            "bytes_communicated": context.bytes_communicated,
            "bytes_shared": context.bytes_shared,
            "collective_calls": context.collective_calls,
        })
        return results

    # ------------------------------------------------------------------ #
    # uniform TaskFramework surface
    # ------------------------------------------------------------------ #
    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Statically partition tasks over ranks and gather the results.

        Tasks run inside the SPMD rank threads, where one raising task
        aborts the whole job (the MPI failure model) — so the resilience
        layer's retry wrapper runs *inside* the rank: a failing task is
        re-executed in place and the collective never aborts, the
        closest analogue MPI has to task replay.
        """
        items = list(items)
        self.metrics = RunMetrics(tasks_submitted=len(items))
        fn, items = self._apply_data_plane(fn, items)
        fn = self._fault_wrap(fn)
        start = time.perf_counter()
        if not items:
            return []
        size = min(self.ranks, len(items))
        chunks = split_into_partitions(items, size)

        def rank_main(comm: Communicator) -> List[Any]:
            local = chunks[comm.rank]
            local_results = [fn(item) for item in local]
            gathered = comm.gather(local_results, root=0)
            if comm.rank == 0:
                return [x for chunk in gathered for x in chunk]
            return []

        context = self._make_context(size)
        self.last_context = context
        per_rank = run_spmd(rank_main, size, context=context)
        # on the shm plane the gather moved only refs (the collective
        # accounted them); resolve to views for the caller
        results = self._finish_results(per_rank[0])
        wall = time.perf_counter() - start
        self.metrics.tasks_completed = len(results)
        self.metrics.wall_time_s = wall
        self.metrics.task_time_s = wall * size  # ranks run for the whole job
        self.metrics.overhead_s = 0.0
        self.metrics.bytes_shuffled += context.bytes_communicated
        self.metrics.bytes_shared += context.bytes_shared
        self._collect_executor_bytes()
        return results

    def broadcast(self, value: Any) -> BroadcastHandle:
        """Account for an ``MPI_Bcast`` of ``value`` to all ranks.

        With the shm transport the bcast degenerates to publishing the
        array once and shipping size-1 refs, mirroring an on-node
        ``MPI_Win_allocate_shared`` window.
        """
        ref = self._share_value(value)
        if ref is not None:
            nbytes = serialized_size(ref) * max(0, self.ranks - 1)
            self.metrics.bytes_broadcast += nbytes
            self.metrics.bytes_shared += ref.nbytes
            return BroadcastHandle(value=ref, nbytes=nbytes, framework=self.name,
                                   bytes_shared=ref.nbytes)
        nbytes = nbytes_of(value) * max(0, self.ranks - 1)
        self.metrics.bytes_broadcast += nbytes
        return BroadcastHandle(value=value, nbytes=nbytes, framework=self.name)
