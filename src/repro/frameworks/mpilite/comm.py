"""SPMD communicator with MPI-style collectives.

The paper's MPI4py baselines are SPMD programs: every rank runs the same
function and the ranks cooperate through collectives (``Bcast``,
``Scatter``, ``Gather``, ``Allgather``, ``Reduce``).  This module provides
an in-process equivalent: ranks run as threads that share a
:class:`WorldContext`, and the collectives synchronize through barriers.
NumPy kernels release the GIL, so ranks really do run concurrently for the
compute-bound parts of the algorithms.

All collectives count the bytes a distributed MPI run would have moved, so
the Leaflet Finder experiments can report broadcast volumes per rank
exactly as Figure 8 does.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..serialization import nbytes_of, serialized_size
from ..shm import BlockRef, SharedMemoryStore, maybe_resolve, refs_nbytes

__all__ = ["WorldContext", "Communicator", "ReduceOp"]


class ReduceOp:
    """Reduction operators understood by ``reduce``/``allreduce``."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"
    CONCAT = "concat"

    _FUNCS: Dict[str, Callable[[Any, Any], Any]] = {}

    @classmethod
    def apply(cls, op: str, values: Sequence[Any]) -> Any:
        """Fold ``values`` (ordered by rank) with operator ``op``."""
        if not values:
            raise ValueError("cannot reduce an empty value list")
        if op == cls.SUM:
            result = values[0]
            for v in values[1:]:
                result = result + v
            return result
        if op == cls.MAX:
            result = values[0]
            for v in values[1:]:
                result = np.maximum(result, v) if isinstance(result, np.ndarray) else max(result, v)
            return result
        if op == cls.MIN:
            result = values[0]
            for v in values[1:]:
                result = np.minimum(result, v) if isinstance(result, np.ndarray) else min(result, v)
            return result
        if op == cls.CONCAT:
            out: List[Any] = []
            for v in values:
                out.extend(v)
            return out
        raise ValueError(f"unknown reduce op {op!r}")


@dataclass
class WorldContext:
    """State shared by all ranks of one SPMD world.

    When ``store`` is set (the shm data plane) the collectives fall back
    to a shared-memory transport for array payloads, the in-process
    analogue of an ``MPI_Win_allocate_shared`` on-node window: the root
    publishes the array to the store once, the wire carries only the ref,
    and the array bytes accumulate in ``bytes_shared`` instead of
    ``bytes_communicated``.

    Contract change vs the pickle transport: arrays received from a
    shm-transport ``bcast``/``scatter`` are *read-only views* of the one
    shared segment (every rank, including the root, sees the same
    memory).  SPMD code that mutates its received buffer in place must
    ``.copy()`` first — exactly as it would with an MPI shared window.
    """

    size: int
    barrier: threading.Barrier = field(init=False)
    lock: threading.Lock = field(default_factory=threading.Lock)
    slots: List[Any] = field(init=False)
    root_slot: Any = None
    bytes_communicated: int = 0
    collective_calls: int = 0
    #: per-collective byte log: (operation, bytes) tuples in call order
    traffic_log: List[tuple] = field(default_factory=list)
    _mailboxes: Dict[tuple, list] = field(default_factory=dict)
    _mail_cv: threading.Condition = field(default_factory=threading.Condition)
    #: shared-memory store enabling the zero-copy transport (None = off)
    store: Optional[SharedMemoryStore] = None
    bytes_shared: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("world size must be >= 1")
        self.barrier = threading.Barrier(self.size)
        self.slots = [None] * self.size

    def account(self, operation: str, nbytes: int) -> None:
        """Record communication volume for one collective call."""
        with self.lock:
            self.bytes_communicated += int(nbytes)
            self.collective_calls += 1
            self.traffic_log.append((operation, int(nbytes)))

    def account_shared(self, nbytes: int) -> None:
        """Record array bytes served through the shared-memory transport."""
        with self.lock:
            self.bytes_shared += int(nbytes)

    def share(self, obj: Any) -> Any:
        """Publish ``obj`` via the store if the transport applies; else obj."""
        if (self.store is not None and isinstance(obj, np.ndarray)
                and obj.nbytes > 0):
            return self.store.put(obj)
        return obj


class Communicator:
    """Per-rank handle used inside SPMD functions (``comm`` argument)."""

    def __init__(self, rank: int, context: WorldContext) -> None:
        if not 0 <= rank < context.size:
            raise ValueError(f"rank {rank} out of range for world size {context.size}")
        self.rank = rank
        self.context = context

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.context.size

    def Get_rank(self) -> int:
        """mpi4py-style accessor."""
        return self.rank

    def Get_size(self) -> int:
        """mpi4py-style accessor."""
        return self.size

    def barrier(self) -> None:
        """Synchronize all ranks."""
        self.context.barrier.wait()

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank.

        With the shared-memory transport active, an array payload is
        published once and only the ref is accounted as moved per rank;
        every rank then receives a *read-only* view of the shared
        segment (copy before mutating in place).
        """
        ctx = self.context
        if self.rank == root:
            payload = ctx.share(obj)
            ctx.root_slot = payload
            if isinstance(payload, BlockRef):
                ctx.account("bcast", serialized_size(payload) * max(0, self.size - 1))
                ctx.account_shared(payload.nbytes)
            else:
                # root sends size-1 copies across the network
                ctx.account("bcast", nbytes_of(obj) * max(0, self.size - 1))
        ctx.barrier.wait()
        value = maybe_resolve(ctx.root_slot)
        ctx.barrier.wait()
        return value

    def scatter(self, chunks: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter one chunk per rank from ``root``.

        Array chunks travel through the shared-memory transport when it
        is active: each rank receives a *read-only* view of its chunk's
        segment (copy before mutating in place) and only the refs are
        accounted as moved.
        """
        ctx = self.context
        if self.rank == root:
            if chunks is None or len(chunks) != self.size:
                raise ValueError("scatter requires exactly one chunk per rank at the root")
            for i, chunk in enumerate(chunks):
                payload = ctx.share(chunk)
                ctx.slots[i] = payload
                if i != root:
                    if isinstance(payload, BlockRef):
                        ctx.account("scatter", serialized_size(payload))
                        ctx.account_shared(payload.nbytes)
                    else:
                        ctx.account("scatter", nbytes_of(chunk))
        ctx.barrier.wait()
        value = maybe_resolve(ctx.slots[self.rank])
        ctx.barrier.wait()
        return value

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank at ``root`` (None elsewhere).

        With the shared-memory transport active, a payload that carries
        :class:`~repro.frameworks.shm.BlockRef` handles (ranks return
        result arrays through the store) moves only its pickled refs to
        the root; the referenced array bytes are accounted as shared —
        the result-direction mirror of the ``bcast``/``scatter``
        accounting.
        """
        ctx = self.context
        ctx.slots[self.rank] = obj
        if self.rank != root:
            shared = refs_nbytes(obj) if ctx.store is not None else 0
            if shared:
                ctx.account("gather", serialized_size(obj))
                ctx.account_shared(shared)
            else:
                ctx.account("gather", nbytes_of(obj))
        ctx.barrier.wait()
        result = list(ctx.slots) if self.rank == root else None
        ctx.barrier.wait()
        return result

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one object per rank, available on every rank."""
        ctx = self.context
        ctx.slots[self.rank] = obj
        ctx.account("allgather", nbytes_of(obj) * max(0, self.size - 1))
        ctx.barrier.wait()
        result = list(ctx.slots)
        ctx.barrier.wait()
        return result

    def reduce(self, obj: Any, op: str = ReduceOp.SUM, root: int = 0) -> Any:
        """Reduce per-rank values with ``op`` at ``root`` (None elsewhere)."""
        gathered = self.gather(obj, root=root)
        if self.rank == root:
            assert gathered is not None
            return ReduceOp.apply(op, gathered)
        return None

    def allreduce(self, obj: Any, op: str = ReduceOp.SUM) -> Any:
        """Reduce per-rank values with ``op``, result on every rank."""
        gathered = self.allgather(obj)
        return ReduceOp.apply(op, gathered)

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest``."""
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        ctx = self.context
        ctx.account("send", nbytes_of(obj))
        with ctx._mail_cv:
            ctx._mailboxes.setdefault((self.rank, dest, tag), []).append(obj)
            ctx._mail_cv.notify_all()

    def recv(self, source: int, tag: int = 0, timeout: float = 30.0) -> Any:
        """Receive one message from ``source`` (blocking, with timeout)."""
        if not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        ctx = self.context
        key = (source, self.rank, tag)
        with ctx._mail_cv:
            ok = ctx._mail_cv.wait_for(lambda: ctx._mailboxes.get(key), timeout=timeout)
            if not ok:
                raise TimeoutError(
                    f"rank {self.rank} timed out waiting for a message from {source} (tag {tag})"
                )
            return ctx._mailboxes[key].pop(0)
