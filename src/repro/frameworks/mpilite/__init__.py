"""mpilite: an MPI-style SPMD substrate (communicator, collectives, runtime)."""

from .comm import Communicator, ReduceOp, WorldContext
from .runtime import MPIFramework, SPMDError, run_spmd

__all__ = [
    "MPIFramework",
    "Communicator",
    "WorldContext",
    "ReduceOp",
    "run_spmd",
    "SPMDError",
]
