"""Zero-copy shared-memory data plane with a spill-to-disk tier.

The paper attributes most of the gap between the Python task-parallel
frameworks and MPI to serialization: every trajectory block and every
position chunk is pickled into the task payload, shipped, and unpickled,
even when producer and consumer share a node.  This module removes that
cost for NumPy payloads — on the inbound *task* path and on the outbound
*result* path:

* :class:`SharedMemoryStore` places an array in a named
  ``multiprocessing.shared_memory`` segment exactly once and returns a
  :class:`BlockRef` — a tiny picklable handle (segment name, shape,
  dtype, offset, spill directory).
* :meth:`BlockRef.resolve` rehydrates the handle as a NumPy *view* of
  the segment, in the owning process or in any worker process that
  attaches by name.  No bytes are copied or pickled for the array
  payload itself.
* :func:`share_payload` / :func:`resolve_payload` walk arbitrary task
  payloads (dataclasses, lists, tuples, dicts) swapping arrays for refs
  and back, so existing task types move onto the data plane unchanged.
* :func:`publish_payload` / :func:`adopt_payload` do the same for
  *results*: a worker process publishes its result arrays into fresh
  segments and returns refs; the driver adopts the segments into its
  store (taking over their lifetime) and resolves the refs zero-copy.
* When a store is constructed with ``capacity_bytes``, segments past the
  watermark spill into memory-mapped files in ``spill_dir`` (the
  :class:`FileBackedStore` tier).  Eviction is size-aware LRU: the
  largest block outside the most-recently-used quarter goes first, so
  one big spill frees what would otherwise cost many small ones.
  Spilled refs keep
  resolving — through the page cache instead of ``/dev/shm`` — so
  ensembles larger than shared memory degrade gracefully instead of
  crashing.
* Spilling is **write-behind** by default (``spill_async=True``): the
  evicting ``put`` hands the victim to a dedicated spill-writer thread
  and returns after the enqueue instead of after the file write.  An
  evicted block moves through ``resident → enqueued → spilling →
  spilled``; in the middle two states it is still readable from shared
  memory, and only once its file is atomically in place is the shm
  name unlinked.  The queue is bounded (``spill_queue_depth``), so
  eviction cannot outrun the disk unboundedly — a full queue blocks the
  putter, and that blocked time (the only put-path stall left) is
  recorded as ``spill_wait_seconds``, while the writer's background
  time is recorded as ``spill_hidden_seconds``.
  :meth:`SharedMemoryStore.flush_spill` is the barrier that waits for
  the queue to drain.
* The resolve side pipelines reads the same way:
  :func:`resolve_payload` issues :func:`prefetch_refs` hints for the
  sibling refs of a multi-block payload, so file-tier blocks stream
  into the page cache while the first block is being consumed.

Every framework substrate accepts ``data_plane="pickle"|"shm"``; with
``"shm"`` the payloads that cross the (real or accounted) process
boundary shrink from array bytes to ref bytes in both directions, and
the array bytes are reported separately as *shared* — the split the
fig8 broadcast experiment quantifies.

Lifetime and cleanup
--------------------
Stores unlink their segments in :meth:`SharedMemoryStore.cleanup`,
which is also registered with :mod:`atexit` *and* as a
``multiprocessing.util.Finalize`` hook: ``atexit`` covers normal
interpreter exit, while the finalizer covers pool worker processes
(which exit through ``os._exit`` and never run ``atexit`` handlers).
Worker-published result segments that were never handed back to a
driver — the worker crashed mid-publish — are unlinked by the same
worker-side finalizer, so repeated test runs do not leak ``/dev/shm``
entries.
"""

from __future__ import annotations

import atexit
import copy
import dataclasses
import itertools
import mmap
import os
import queue
import sys
import tempfile
import threading
import time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from multiprocessing import resource_tracker, shared_memory, util as mp_util

__all__ = [
    "DATA_PLANES",
    "BlockLost",
    "BlockRef",
    "SharedMemoryStore",
    "FileBackedStore",
    "share_payload",
    "resolve_payload",
    "prefetch_refs",
    "publish_payload",
    "mark_handed_off",
    "adopt_payload",
    "refs_nbytes",
    "collect_refs",
    "maybe_resolve",
    "ResolvingTask",
    "sweep_orphan_segments",
    "unlink_segment_by_name",
    "array_digest",
    "resident_names",
    "prefetch_hints_dropped",
    "spill_read_bytes",
]

#: Valid values for the ``data_plane`` option on frameworks and the public API.
DATA_PLANES = ("pickle", "shm")

#: Name prefix of worker-published result segments.  The worker pid is
#: embedded right after it (``rpub-<pid>-<nonce>``) so a driver can sweep
#: the orphans a SIGKILLed worker left behind — a worker killed between
#: ``publish_payload`` and the driver's adopt runs neither its ``atexit``
#: handlers nor its ``multiprocessing.util.Finalize`` hooks, so name-keyed
#: crash cleanup is the only path that reclaims those segments.
PUBLISH_PREFIX = "rpub"


class BlockLost(FileNotFoundError):
    """A :class:`BlockRef` resolved through no tier: the block is lost.

    Raised by :meth:`BlockRef.resolve` when neither a live shared-memory
    segment nor a readable spill file exists for the ref — the block was
    unlinked, corrupted, or belonged to a worker that crashed before
    handing it off.  Subclasses :class:`FileNotFoundError` so callers
    that treated the old error keep working; the resilience layer
    (:mod:`repro.frameworks.faults`) catches it specifically to heal the
    block from its registered source array or to re-execute the
    producing task.

    Parameters
    ----------
    segment : str
        Segment name of the lost block.
    spill_dir : str, optional
        Spill directory the ref would have fallen back to.
    """

    def __init__(self, segment: str, spill_dir: Optional[str] = None) -> None:
        self.segment = segment
        self.spill_dir = spill_dir
        super().__init__(f"block {segment!r} is lost: no shared-memory segment "
                         f"and no spill file under {spill_dir!r}")

    def __reduce__(self):
        """Pickle by (segment, spill_dir) so the error crosses process pools."""
        return (type(self), (self.segment, self.spill_dir))

# Process-local segment registries.  ``_OWNED`` holds segments created by
# stores in this process (resolving a ref to an owned segment is a pure
# dictionary lookup); ``_ATTACHED`` caches segments this process attached
# to by name, so repeated resolves of worker-side refs reuse one mapping;
# ``_MAPPED`` caches memory-mapped spill files the same way.
_OWNED: Dict[str, shared_memory.SharedMemory] = {}
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_MAPPED: Dict[str, mmap.mmap] = {}
_REGISTRY_LOCK = threading.Lock()

# Result segments published by this (worker) process that have not yet
# been handed off to a driver: name -> SharedMemory.  Normally emptied by
# ``publish_payload`` callers the moment the refs are returned; anything
# left behind belongs to a crashed task and is unlinked at process exit.
_PUBLISHED: Dict[str, shared_memory.SharedMemory] = {}
_PUBLISH_HOOK_INSTALLED = False

# Data-movement accounting for the file tier.  ``_SPILL_READ_NAMES``
# records which spilled blocks this process has resolved through the
# disk tier at least once; ``_SPILL_READ_BYTES`` accumulates their full
# block sizes.  First resolves are what locality-aware placement tries
# to concentrate: once a process has mapped (and faulted in) a block,
# later resolves of the same block are registry hits that move nothing.
_SPILL_READ_NAMES: set = set()
_SPILL_READ_BYTES = 0

# Prefetch hints dropped because the hint queue was full, process-local
# (see :func:`prefetch_refs`).  Surfaced through executor timings into
# ``RunMetrics.prefetch_hints_dropped`` so tuning ``spill_queue_depth``
# against the prefetch depth is observable.
_PREFETCH_DROPPED = 0

# Unlinked segments whose mappings are still pinned by live NumPy views.
# NumPy does not hold a Py_buffer export on the mapping — closing (or
# garbage-collecting) the SharedMemory object would unmap the pages
# underneath the views — so such segments are parked here and closed by
# :func:`_sweep_retired` once their views are gone.
_RETIRED: List[shared_memory.SharedMemory] = []


def _segment_in_use(segment: shared_memory.SharedMemory) -> bool:
    """Whether live array views still point into ``segment``'s mapping.

    A view created by :meth:`BlockRef.resolve` keeps a reference to the
    segment's underlying ``mmap`` object (its ``base``), so the mmap's
    refcount reveals outstanding views.  The baseline references are the
    segment's own ``_mmap`` attribute, the ``obj`` slot of its cached
    ``_buf`` memoryview, the local binding below, and ``getrefcount``'s
    argument — anything beyond those is a view (or another buffer
    consumer), and the mapping must not be torn down.
    """
    mapping = getattr(segment, "_mmap", None)
    if mapping is None:
        return False
    return sys.getrefcount(mapping) > 4


def _retire_or_close(segment: shared_memory.SharedMemory) -> None:
    """Close a no-longer-wanted segment, or park it if views pin it.

    The in-use check and the close run under ``_REGISTRY_LOCK``, the
    same lock :meth:`BlockRef.resolve` holds while constructing a view
    from a registry segment — otherwise a view created between the
    refcount check and the close would dangle over unmapped pages.
    """
    with _REGISTRY_LOCK:
        if _segment_in_use(segment):
            _RETIRED.append(segment)
            return
        try:
            segment.close()
        except Exception:
            pass


def _sweep_retired() -> None:
    """Close parked segments whose last view has since been dropped."""
    with _REGISTRY_LOCK:
        parked = list(_RETIRED)
        _RETIRED.clear()
    for segment in parked:
        _retire_or_close(segment)


def _unregister_from_tracker(segment: shared_memory.SharedMemory) -> None:
    """Undo the resource tracker's registration of a shm segment.

    Both creating and attaching to a segment register it with the
    resource tracker as if this process owned it, which makes the
    tracker unlink (or warn about) the segment when any such process
    exits.  The data plane manages segment lifetime explicitly (stores
    own their segments; published result segments are adopted by the
    driver), so tracker bookkeeping is dropped for everything except the
    creating store's own segments.

    Parameters
    ----------
    segment : multiprocessing.shared_memory.SharedMemory
        The segment to unregister.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass


def _quiet_unlink(segment: shared_memory.SharedMemory) -> None:
    """Unlink a segment without unbalancing the resource tracker.

    ``SharedMemory.unlink`` always sends an *unregister* to the resource
    tracker; depending on which process attached (and dropped tracking)
    in between, the name may or may not still be registered.  The
    tracker's registry is a set, so registering right before unlinking
    makes the pair balanced in every history — and if the unlink fails
    (name already gone), the freshly added entry is removed again so the
    tracker never warns about it at exit.

    Parameters
    ----------
    segment : multiprocessing.shared_memory.SharedMemory
        The segment to unlink.
    """
    try:
        resource_tracker.register(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass
    try:
        segment.unlink()
    except Exception:
        _unregister_from_tracker(segment)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Return the shm segment ``name``: owned registry, attach cache, or a fresh attach.

    Parameters
    ----------
    name : str
        Shared-memory segment name.

    Returns
    -------
    multiprocessing.shared_memory.SharedMemory
        The (cached) mapping of the segment.

    Raises
    ------
    FileNotFoundError
        If no segment with that name exists (e.g. it was spilled to disk
        and unlinked).
    """
    with _REGISTRY_LOCK:
        segment = _OWNED.get(name) or _ATTACHED.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name)
            _unregister_from_tracker(segment)
            _ATTACHED[name] = segment
        return segment


def _simulated_cold_read_seconds(nbytes: int) -> float:
    """Deterministic cost model for a cold spill-file read, in seconds.

    Controlled by the ``REPRO_COLD_READ_BW_MBS`` environment variable: a
    positive float models a disk tier with that sequential bandwidth in
    MB/s, and every *cold* :func:`_attach_file` (first mapping of a
    block file in this process) sleeps ``nbytes / bandwidth``.  Re-reads
    through the per-process mapping cache stay free, exactly like pages
    a live mapping keeps warm.

    The knob exists for benchmarks and tests: CI machines hide the disk
    tier behind an aggressive page cache, so measuring what placement
    *saves* needs the cold-read cost pinned rather than left to whatever
    the host's cache happens to do.  Unset (the default), the model is
    inert and real I/O timing applies.
    """
    raw = os.environ.get("REPRO_COLD_READ_BW_MBS")
    if not raw:
        return 0.0
    try:
        bandwidth = float(raw)
    except ValueError:
        return 0.0
    if bandwidth <= 0:
        return 0.0
    return nbytes / (bandwidth * 1e6)


def _attach_file(spill_dir: str, name: str) -> Optional[mmap.mmap]:
    """Memory-map the spill file for segment ``name``, if it exists.

    Parameters
    ----------
    spill_dir : str
        Directory the owning store spills into.
    name : str
        Segment name; the file is ``<spill_dir>/<name>.blk``.

    Returns
    -------
    mmap.mmap or None
        A read-only mapping of the block file (cached per process), or
        ``None`` when the segment was never spilled.
    """
    path = os.path.join(spill_dir, name + ".blk")
    with _REGISTRY_LOCK:
        mapped = _MAPPED.get(path)
    if mapped is not None:
        return mapped
    try:
        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    except (FileNotFoundError, ValueError):
        return None
    delay = _simulated_cold_read_seconds(len(mapped))
    with _REGISTRY_LOCK:
        # keep the first mapping if another thread raced us here
        first = path not in _MAPPED
        mapped = _MAPPED.setdefault(path, mapped)
    if first and delay > 0:
        time.sleep(delay)
    return mapped


def resident_names() -> frozenset:
    """Segment names this process can resolve without touching the disk cold.

    The union of the process-local registries: segments owned by stores
    in this process, segments attached by name, and spill files already
    memory-mapped here (reported by their segment name, without the
    ``.blk`` suffix).  Workers export this set through their resident-set
    files so the driver's locality-aware placement can route a task to a
    process that already holds the task's blocks — in particular a
    *spilled* block whose shared-memory name is gone everywhere except
    in the processes that mapped it before the spill.

    Returns
    -------
    frozenset of str
        Resolvable-locally segment names at the time of the call.
    """
    with _REGISTRY_LOCK:
        names = set(_OWNED) | set(_ATTACHED)
        for path in _MAPPED:
            base = os.path.basename(path)
            if base.endswith(".blk"):
                base = base[:-4]
            names.add(base)
    return frozenset(names)


def spill_read_bytes() -> int:
    """Cumulative bytes of spilled blocks first-resolved from the disk tier.

    Process-local: each spilled block counts its full size exactly once
    per process, at the first resolve that had to go through its
    ``.blk`` file.  The counter is the data-movement cost locality-aware
    placement minimizes — re-resolves through the cached mapping move
    nothing and are not counted.
    """
    return _SPILL_READ_BYTES


def prefetch_hints_dropped() -> int:
    """Process-local count of prefetch hints dropped on a full queue."""
    return _PREFETCH_DROPPED


def _invalidate_mapping(path: str) -> None:
    """Drop a cached spill-file mapping (after a rewrite or corruption).

    The next :func:`_attach_file` call re-opens the file fresh, so a
    block healed by :meth:`SharedMemoryStore.recover_spilled_block` is
    not read through a stale mapping of the old inode.  The old mapping
    is left unclosed if live views may still pin it — the process exit
    reclaims it, which is the same policy :data:`_RETIRED` applies to
    shared-memory segments.
    """
    with _REGISTRY_LOCK:
        mapped = _MAPPED.pop(path, None)
    if mapped is not None:
        try:
            if sys.getrefcount(mapped) <= 3:  # pop local + argument + temp
                mapped.close()
        except Exception:
            pass


def unlink_segment_by_name(name: str) -> bool:
    """Unlink a shared-memory segment by name; whether one was removed.

    Used by the fault injector (simulating a segment that vanished
    before adoption) and by the orphan sweep.  Attaching just to unlink
    would register the name with the resource tracker, so the ``/dev/shm``
    file is removed directly where that directory exists, falling back
    to an attach-and-unlink elsewhere.

    Parameters
    ----------
    name : str
        Shared-memory segment name.

    Returns
    -------
    bool
        ``True`` when a segment with that name existed and was removed.
    """
    path = os.path.join("/dev/shm", name)
    if os.path.isdir("/dev/shm"):
        try:
            os.remove(path)
            return True
        except OSError:
            return False
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    _quiet_unlink(segment)
    try:
        segment.close()
    except Exception:
        pass
    return True


def sweep_orphan_segments(live_pids: Sequence[int] = ()) -> int:
    """Unlink published result segments whose worker process is dead.

    Worker-published segments are named ``rpub-<pid>-<nonce>``
    (:data:`PUBLISH_PREFIX`), and a worker killed between
    ``publish_payload`` and the driver's adopt runs no exit hooks — its
    segments would outlive the run.  This sweep walks ``/dev/shm`` for
    publish-prefixed names, checks whether the embedded pid is still
    alive, and unlinks the segments of dead publishers.  Callers run it
    from a pool-recovery path, after the broken pool's workers have been
    reaped.

    Parameters
    ----------
    live_pids : sequence of int, optional
        Pids to leave alone even if the liveness probe cannot see them
        (e.g. freshly spawned replacement workers).

    Returns
    -------
    int
        Number of segments unlinked.  0 on platforms without a
        ``/dev/shm`` directory, where orphan names cannot be enumerated.
    """
    if not os.path.isdir("/dev/shm"):
        return 0
    keep = {int(pid) for pid in live_pids}
    keep.add(os.getpid())
    swept = 0
    prefix = PUBLISH_PREFIX + "-"
    for entry in os.listdir("/dev/shm"):
        if not entry.startswith(prefix):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[1])
        except (IndexError, ValueError):
            continue
        if pid in keep:
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            pass  # publisher is gone: the segment is an orphan
        except PermissionError:
            continue  # alive, owned by someone else
        else:
            continue  # publisher still alive: adoption may be in flight
        swept += int(unlink_segment_by_name(entry))
    return swept


# Fork safety for the background threads.  The spill writer and the
# prefetcher take _REGISTRY_LOCK — and, through the shm create/unlink
# calls, the resource tracker's internal lock — for short critical
# sections.  A process pool that forks in exactly such a window would
# inherit a lock no surviving thread can ever release, deadlocking the
# worker's first resolve or publish (observed as a hang inside
# ``resource_tracker.ensure_running``).  Holding the locks across the
# fork closes the window; the child additionally drops the prefetch
# queue — its serving thread did not survive the fork, so a fresh one
# is started on demand.
def _fork_critical_locks() -> List[Any]:
    """The locks that must not be mid-acquisition while forking."""
    locks: List[Any] = [_REGISTRY_LOCK, _prefetch_lock]
    tracker_lock = getattr(resource_tracker._resource_tracker, "_lock", None)  # noqa: SLF001
    if tracker_lock is not None:
        locks.append(tracker_lock)
    return locks


def _hold_module_locks_before_fork() -> None:
    for lock in _fork_critical_locks():
        lock.acquire()


def _release_module_locks_after_fork() -> None:
    for lock in reversed(_fork_critical_locks()):
        lock.release()


def _reset_prefetcher_in_child() -> None:
    global _prefetch_queue, _PREFETCH_DROPPED, _SPILL_READ_BYTES
    _release_module_locks_after_fork()
    _prefetch_queue = None
    # per-process data-movement counters start fresh in the child, so a
    # worker's deltas describe what *it* moved, not what the driver did
    # before the fork
    _PREFETCH_DROPPED = 0
    _SPILL_READ_BYTES = 0
    _SPILL_READ_NAMES.clear()


if hasattr(os, "register_at_fork"):  # POSIX only, like fork itself
    os.register_at_fork(before=_hold_module_locks_before_fork,
                        after_in_parent=_release_module_locks_after_fork,
                        after_in_child=_reset_prefetcher_in_child)


# Read-ahead for the file tier.  resolve_payload hints the sibling refs
# of a multi-block payload so their spill files are mapped (and madvised)
# by a background thread while the first block is being consumed.  Purely
# best-effort: hints are dropped when the queue is full and every failure
# is swallowed — prefetch must never change semantics, only warm the page
# cache.
_PREFETCH_DEPTH = 64
_prefetch_queue: Optional["queue.Queue[Tuple[str, str]]"] = None
_prefetch_lock = threading.Lock()


def _prefetch_worker() -> None:
    """Serve read-ahead hints: map the spill file and advise the kernel."""
    while True:
        spill_dir, name = _prefetch_queue.get()
        try:
            with _REGISTRY_LOCK:
                if name in _OWNED or name in _ATTACHED:
                    continue  # resident again (or never left): nothing to warm
            mapped = _attach_file(spill_dir, name)
            if mapped is not None and hasattr(mapped, "madvise"):
                mapped.madvise(mmap.MADV_WILLNEED)
        except Exception:
            pass


def prefetch_refs(refs: Sequence["BlockRef"]) -> int:
    """Issue read-ahead hints for refs that may live in the file tier.

    Each hint asks a background thread to memory-map the ref's spill
    file (populating the per-process mapping cache that
    :meth:`BlockRef.resolve` consults) and to ``madvise(WILLNEED)`` it,
    so the kernel starts paging the block in before the first access.
    Refs that are resident in shared memory, already mapped, or carry no
    spill directory are skipped; a hint that finds the queue full is
    dropped (never blocking the caller) and counted in
    :func:`prefetch_hints_dropped`, while the remaining refs of the
    batch still get their chance — the writer drains concurrently, so a
    momentarily full queue must not abandon every sibling.

    Parameters
    ----------
    refs : sequence of BlockRef
        Candidate refs, usually the siblings of the block about to be
        consumed (see :func:`resolve_payload`).

    Returns
    -------
    int
        Number of hints actually enqueued.
    """
    global _prefetch_queue, _PREFETCH_DROPPED
    hints = 0
    dropped = 0
    for ref in refs:
        if not isinstance(ref, BlockRef) or ref.spill_dir is None:
            continue
        name = ref.segment
        path = os.path.join(ref.spill_dir, name + ".blk")
        with _REGISTRY_LOCK:
            if name in _OWNED or name in _ATTACHED or path in _MAPPED:
                continue  # already resolvable without touching the disk
        if _prefetch_queue is None:
            with _prefetch_lock:
                if _prefetch_queue is None:
                    _prefetch_queue = queue.Queue(maxsize=_PREFETCH_DEPTH)
                    threading.Thread(target=_prefetch_worker,
                                     name="repro-spill-prefetch",
                                     daemon=True).start()
        try:
            _prefetch_queue.put_nowait((ref.spill_dir, name))
        except queue.Full:
            # skip only this hint: the worker drains concurrently, so a
            # later sibling may well find a free slot
            dropped += 1
            continue
        hints += 1
    if dropped:
        with _prefetch_lock:
            _PREFETCH_DROPPED += dropped
    return hints


def _copy_into_segment(array: np.ndarray,
                       spill_dir: Optional[str] = None,
                       name_prefix: Optional[str] = None
                       ) -> Tuple[shared_memory.SharedMemory, "BlockRef"]:
    """Copy an array into a fresh shm segment and build its ref.

    The one place that knows how array bytes enter a segment (contiguity
    coercion, sizing, the copy itself) — shared by
    :meth:`SharedMemoryStore.put` and :func:`publish_payload` so the two
    entry points cannot drift apart.

    Parameters
    ----------
    array : numpy.ndarray
        Array to copy (made C-contiguous; zero-byte arrays rejected).
    spill_dir : str, optional
        Spill directory to embed in the returned ref.
    name_prefix : str, optional
        When given, the segment is created under an explicit name
        ``<prefix>-<nonce>`` instead of a platform-chosen one — how
        :func:`publish_payload` keys result segments by worker pid so
        crashed publishers can be swept.

    Returns
    -------
    segment : multiprocessing.shared_memory.SharedMemory
        The freshly created segment (caller owns it).
    ref : BlockRef
        Handle to the copied bytes.
    """
    data = np.ascontiguousarray(array)
    if data.nbytes == 0:
        raise ValueError("cannot share a zero-byte array")
    if name_prefix is None:
        segment = shared_memory.SharedMemory(create=True, size=data.nbytes)
    else:
        while True:
            name = f"{name_prefix}-{uuid.uuid4().hex[:12]}"
            try:
                segment = shared_memory.SharedMemory(name=name, create=True,
                                                     size=data.nbytes)
                break
            except FileExistsError:  # nonce collision: draw again
                continue
    view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
    np.copyto(view, data)
    del view
    ref = BlockRef(segment=segment.name, shape=tuple(data.shape),
                   dtype=data.dtype.str, spill_dir=spill_dir)
    return segment, ref


def _install_publish_hook() -> None:
    """Install the process-exit hook that unlinks orphaned published segments.

    Registered lazily on first publish so the hook exists in whichever
    process actually publishes (pool workers clear finalizers inherited
    from the parent, so a hook installed driver-side would not cover
    them).  Both ``atexit`` (normal interpreter exit) and
    ``multiprocessing.util.Finalize`` (worker processes, which exit via
    ``os._exit``) paths are covered.
    """
    global _PUBLISH_HOOK_INSTALLED
    if _PUBLISH_HOOK_INSTALLED:
        return
    _PUBLISH_HOOK_INSTALLED = True
    atexit.register(_cleanup_published)
    mp_util.Finalize(None, _cleanup_published, exitpriority=10)


def _cleanup_published() -> None:
    """Unlink any published result segments that were never handed off."""
    with _REGISTRY_LOCK:
        leftovers = list(_PUBLISHED.values())
        _PUBLISHED.clear()
    for segment in leftovers:
        _quiet_unlink(segment)
        _retire_or_close(segment)


@dataclass(frozen=True)
class BlockRef:
    """Lightweight handle to an array stored in a shared-memory segment.

    A ref pickles to a few hundred bytes regardless of the array size;
    :meth:`resolve` returns a read-only NumPy view of the segment (zero
    copies).  Refs are immutable and hashable, so they can be
    deduplicated and reused across many tasks.

    Parameters
    ----------
    segment : str
        Name of the shared-memory segment (or file-backed block) that
        holds the array bytes.
    shape : tuple of int
        Array shape.
    dtype : str
        NumPy dtype string (``array.dtype.str``).
    offset : int, optional
        Byte offset of the array data inside the segment.
    spill_dir : str, optional
        Directory the owning store spills into.  When the segment has
        been retired from ``/dev/shm``, :meth:`resolve` falls back to a
        memory-mapped ``<spill_dir>/<segment>.blk`` file; refs from
        stores that never spill carry ``None``.
    """

    segment: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int = 0
    spill_dir: Optional[str] = None

    @property
    def nbytes(self) -> int:
        """Bytes of array data the ref points at (not bytes it pickles to)."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize

    def _view(self, buffer: Any) -> np.ndarray:
        """Build the read-only array view over ``buffer``."""
        view = np.ndarray(self.shape, dtype=self.dtype, buffer=buffer,
                          offset=self.offset)
        if view.flags.writeable:
            view.flags.writeable = False
        return view

    def resolve(self) -> np.ndarray:
        """Rehydrate the ref as a read-only NumPy view, zero-copy.

        Resolution order: a segment mapping this process already holds
        (owned or attached), the spill-file tier, then a fresh
        shared-memory attach by name.  A segment that spills between the
        lookup and the view construction is retried through the file
        tier, so refs stay valid across spills.

        Returns
        -------
        numpy.ndarray
            Read-only view of the shared (or memory-mapped) bytes.

        Raises
        ------
        BlockLost
            If neither a live segment nor a readable spill file exists
            for this ref's segment name (a :class:`FileNotFoundError`
            subclass, so pre-resilience callers keep working).  A spill
            file too short for the ref's shape — a corrupted or
            truncated block — counts as missing.
        """
        name = self.segment
        with _REGISTRY_LOCK:
            # view construction stays inside the lock so the spill
            # path's check-then-close cannot unmap the segment between
            # our lookup and the ndarray taking its reference
            segment = _OWNED.get(name) or _ATTACHED.get(name)
            if segment is not None and getattr(segment, "buf", None) is not None:
                try:
                    return self._view(segment.buf)
                except (ValueError, TypeError):
                    pass  # segment retired (spilled) under us; fall through
        view = self._file_view()
        if view is not None:
            return view
        try:
            segment = _attach(name)
        except FileNotFoundError:
            # the owning store may have spilled it while we attached
            view = self._file_view()
            if view is not None:
                return view
            raise BlockLost(name, self.spill_dir) from None
        return self._view(segment.buf)

    def _file_view(self) -> Optional[np.ndarray]:
        """Try the spill-file tier; ``None`` when absent or unreadable.

        A mapping too small for the ref's shape (a truncated or
        corrupted block file) is dropped from the per-process cache and
        treated as missing, so the resilience layer sees one uniform
        :class:`BlockLost` signal for every flavour of lost block.

        The first successful file-tier resolve of each block in this
        process is accounted in :func:`spill_read_bytes` — the
        data-movement cost locality-aware placement steers around.
        """
        if self.spill_dir is None:
            return None
        mapped = _attach_file(self.spill_dir, self.segment)
        if mapped is None:
            return None
        try:
            view = self._view(mapped)
        except (ValueError, TypeError):
            _invalidate_mapping(os.path.join(self.spill_dir, self.segment + ".blk"))
            return None
        global _SPILL_READ_BYTES
        with _REGISTRY_LOCK:
            if self.segment not in _SPILL_READ_NAMES:
                _SPILL_READ_NAMES.add(self.segment)
                _SPILL_READ_BYTES += len(mapped)
        return view

    def slice_rows(self, start: int, stop: int) -> "BlockRef":
        """Return a sub-ref covering rows ``start:stop`` along the first axis.

        This is how partitioners hand out per-task chunks without
        copying: the sub-ref shares the parent segment and only adjusts
        offset and shape.  Requires the stored array to be C-contiguous,
        which :meth:`SharedMemoryStore.put` guarantees.

        Parameters
        ----------
        start, stop : int
            Row range (negative and out-of-range values are clipped with
            ``slice`` semantics).

        Returns
        -------
        BlockRef
            Ref to the same segment with adjusted shape and offset.
        """
        if not self.shape:
            raise ValueError("cannot row-slice a 0-d BlockRef")
        start, stop, _ = slice(start, stop).indices(self.shape[0])
        row_items = 1
        for dim in self.shape[1:]:
            row_items *= int(dim)
        itemsize = np.dtype(self.dtype).itemsize
        return BlockRef(
            segment=self.segment,
            shape=(max(0, stop - start),) + tuple(self.shape[1:]),
            dtype=self.dtype,
            offset=self.offset + start * row_items * itemsize,
            spill_dir=self.spill_dir,
        )


class SharedMemoryStore:
    """Registry of arrays placed in shared memory, keyed by segment name.

    ``put`` copies an array into a fresh segment once and returns a
    :class:`BlockRef`; putting the same array object again returns the
    existing ref (so a 2-D block decomposition that reuses every
    trajectory in ~2·N/n1 tasks still shares each one exactly once).
    ``adopt`` takes ownership of a segment another process published, so
    worker-side result blocks are unlinked with the rest of the store.
    With ``capacity_bytes`` set the store keeps at most that many
    resident segment bytes: cold segments spill to memory-mapped files
    in ``spill_dir`` (largest-cold-first — see :meth:`_choose_victim`)
    and their refs keep resolving bit-identically through the file tier.

    Spilling is write-behind by default (``spill_async=True``): the
    evicting put hands the victim block to a dedicated spill-writer
    thread through a bounded queue and returns immediately, so the hot
    path no longer stalls for the file write.  An evicted block moves
    through ``resident → enqueued → spilling → spilled``; until the
    writer demotes it, it stays readable from shared memory.  A full
    queue blocks the evicting put (backpressure), which bounds how far
    shared-memory usage can overrun the watermark.
    :meth:`flush_spill` is the barrier that drains the queue;
    ``spill_async=False`` restores the synchronous in-line write.

    ``cleanup`` closes and unlinks every owned segment and removes the
    spill files; it also runs at interpreter exit (``atexit``) and at
    worker-process exit (``multiprocessing.util.Finalize``) as a
    backstop against leaked ``/dev/shm`` entries.  Pending write-behind
    work is discarded at cleanup, never leaked: blocks still in flight
    are unlinked straight from shared memory.

    Parameters
    ----------
    capacity_bytes : int, optional
        Watermark for resident segment bytes.  ``None`` (default)
        disables spilling.
    spill_dir : str, optional
        Directory for the disk tier.  Created on demand; when omitted
        and a capacity is set, a private temporary directory is used
        (and removed by :meth:`cleanup`).
    spill_async : bool, optional
        ``True`` (default) spills write-behind on the spill-writer
        thread; ``False`` writes spill files synchronously in the
        evicting thread.
    spill_queue_depth : int, optional
        Maximum number of blocks queued for the writer before eviction
        applies backpressure (default 4; must be positive).

    Attributes
    ----------
    bytes_shared : int
        Cumulative unique array bytes entered through :meth:`put`.
    bytes_adopted : int
        Cumulative segment bytes adopted from other processes.
    bytes_ingested : int
        Cumulative unique source bytes entered through :meth:`ingest`
        (streamed input chunks; fingerprint hits do not re-count).
    peak_resident_bytes : int
        High-water mark of ``bytes_resident`` over the store's lifetime
        — the number that proves an out-of-core run never materialized
        its inputs.
    bytes_resident : int
        Segment bytes currently resident in shared memory (grows on
        put/adopt, shrinks when a block is evicted — for write-behind
        spills that is enqueue time, when the block is committed to
        leaving).
    bytes_spilled : int
        Cumulative bytes evicted to the disk tier (accounted when the
        eviction is decided, so the counter is deterministic under
        write-behind).
    spill_wait_seconds : float
        Cumulative seconds eviction stalled the putting thread: full
        file-write time when ``spill_async=False``, backpressure
        blocking only when ``True``.
    spill_hidden_seconds : float
        Cumulative seconds the write-behind thread spent writing spill
        files in the background (always 0 for synchronous stores).
    """

    def __init__(self, capacity_bytes: int | None = None,
                 spill_dir: str | None = None,
                 spill_async: bool = True,
                 spill_queue_depth: int = 4) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if spill_queue_depth < 1:
            raise ValueError("spill_queue_depth must be positive")
        self._segments: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        # id(array) -> (array, ref); the array reference keeps the id stable
        self._registered: Dict[int, Tuple[np.ndarray, BlockRef]] = {}
        # ingest-side dedup and healing: fingerprint -> ref, and segment
        # name -> picklable loader that re-reads the block's source bytes
        self._fingerprints: Dict[str, BlockRef] = {}
        self._sources: Dict[str, Any] = {}
        self._spilled: Dict[str, int] = {}
        self._lock = threading.RLock()
        self._closed = False
        self.capacity_bytes = capacity_bytes
        self.spill_async = bool(spill_async)
        self.spill_queue_depth = int(spill_queue_depth)
        self.bytes_shared = 0
        self.bytes_adopted = 0
        self.bytes_ingested = 0
        self.bytes_resident = 0
        self.peak_resident_bytes = 0
        self.bytes_spilled = 0
        self.spill_wait_seconds = 0.0
        self.spill_hidden_seconds = 0.0
        # write-behind state: blocks in the enqueued/spilling states live
        # in _spilling (name -> (segment, nbytes)) so their segments stay
        # mapped and resolvable until the writer demotes them
        self._spilling: Dict[str, Tuple[shared_memory.SharedMemory, int]] = {}
        self._spill_queue: "deque[str]" = deque()
        self._spill_cv = threading.Condition(self._lock)
        self._spill_thread: threading.Thread | None = None
        self._spill_stop = False
        self._spill_error: BaseException | None = None
        self._owns_spill_dir = capacity_bytes is not None and spill_dir is None
        if self._owns_spill_dir:
            self.spill_dir: str | None = tempfile.mkdtemp(prefix="repro-spill-")
        else:
            self.spill_dir = spill_dir
            if spill_dir is not None:
                os.makedirs(spill_dir, exist_ok=True)
        atexit.register(self.cleanup)
        # atexit never runs in multiprocessing workers (they exit through
        # os._exit); the Finalize hook covers them
        self._finalizer = mp_util.Finalize(self, SharedMemoryStore.cleanup,
                                           args=(self,), exitpriority=10)

    # ------------------------------------------------------------------ #
    def put(self, array: np.ndarray, dedup: bool = True) -> BlockRef:
        """Place ``array`` in shared memory and return its ref.

        Parameters
        ----------
        array : numpy.ndarray
            Array to share; copied into the segment (made C-contiguous
            if needed).  Zero-byte arrays are rejected.
        dedup : bool, optional
            With the default ``True`` the same array *object* is shared
            at most once and later puts return the original ref; the
            store keeps a reference to the array to pin its identity.
            Result-plane callers pass ``False`` — each result array is
            shared exactly once and must not be kept alive driver-side.

        Returns
        -------
        BlockRef
            Handle to the stored bytes.
        """
        if self._closed:
            raise RuntimeError("SharedMemoryStore is closed")
        if not isinstance(array, np.ndarray):
            raise TypeError(f"SharedMemoryStore.put needs an ndarray, got {type(array)!r}")
        key = id(array)
        _sweep_retired()
        with self._lock:
            # re-checked under the lock: a concurrent cleanup() that beat
            # us here must not gain a segment after its teardown sweep
            if self._closed:
                raise RuntimeError("SharedMemoryStore is closed")
            if dedup:
                hit = self._registered.get(key)
                if hit is not None:
                    self._touch(hit[1].segment)
                    return hit[1]
            segment, ref = _copy_into_segment(array, spill_dir=self.spill_dir)
            with _REGISTRY_LOCK:
                _OWNED[segment.name] = segment
            self._segments[segment.name] = segment
            self._sizes[segment.name] = ref.nbytes
            if dedup:
                self._registered[key] = (array, ref)
            self.bytes_shared += ref.nbytes
            self.bytes_resident += ref.nbytes
            self._note_resident_peak()
            self._maybe_spill()
            return ref

    def ingest(self, fingerprint: str, loader: Any) -> BlockRef:
        """Ingest externally sourced bytes under a dedup fingerprint.

        The streaming-input path: unlike :meth:`put`, nothing pins the
        source array driver-side — deduplication is keyed by
        ``fingerprint`` (e.g. chunk file path + chunk index), and the
        picklable ``loader`` is registered as the block's healing source,
        so a spilled chunk block whose ``.blk`` file is lost heals by
        re-reading the original file
        (:meth:`recover_spilled_block`).  A fingerprint hit refreshes the
        block's LRU position and returns the existing ref without calling
        the loader; a miss calls ``loader()`` once, copies the result
        into a fresh segment, and accounts the bytes under
        ``bytes_ingested``.

        Parameters
        ----------
        fingerprint : str
            Stable identity of the source bytes.  Two ingests with the
            same fingerprint share one block.
        loader : callable
            Zero-argument picklable callable returning the block's
            ``numpy.ndarray`` (e.g.
            :class:`~repro.trajectory.streaming.ChunkSource`).

        Returns
        -------
        BlockRef
            Handle to the ingested bytes.
        """
        if self._closed:
            raise RuntimeError("SharedMemoryStore is closed")
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedMemoryStore is closed")
            hit = self._fingerprints.get(fingerprint)
            if hit is not None:
                self._touch(hit.segment)
                return hit
        # the file read runs outside the store lock; a racing ingest of
        # the same fingerprint is resolved under the lock below
        array = np.asarray(loader())
        _sweep_retired()
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedMemoryStore is closed")
            hit = self._fingerprints.get(fingerprint)
            if hit is not None:
                self._touch(hit.segment)
                return hit
            segment, ref = _copy_into_segment(array, spill_dir=self.spill_dir)
            with _REGISTRY_LOCK:
                _OWNED[segment.name] = segment
            self._segments[segment.name] = segment
            self._sizes[segment.name] = ref.nbytes
            self._fingerprints[fingerprint] = ref
            self._sources[segment.name] = loader
            self.bytes_ingested += ref.nbytes
            self.bytes_resident += ref.nbytes
            self._note_resident_peak()
            self._maybe_spill()
            return ref

    def adopt(self, ref: BlockRef) -> BlockRef:
        """Take ownership of the segment behind a worker-published ref.

        The segment joins the store's resident set: it counts against
        the capacity watermark, may spill, and is unlinked by
        :meth:`cleanup`.  Adopting a ref the store already owns (or has
        already spilled) only refreshes its LRU position.

        Parameters
        ----------
        ref : BlockRef
            Ref whose segment this store should own.

        Returns
        -------
        BlockRef
            The ref, rewritten to carry this store's ``spill_dir`` so it
            keeps resolving after a spill.
        """
        if not isinstance(ref, BlockRef):
            raise TypeError(f"SharedMemoryStore.adopt needs a BlockRef, got {type(ref)!r}")
        _sweep_retired()
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedMemoryStore is closed")
            name = ref.segment
            out = ref if ref.spill_dir == self.spill_dir else \
                dataclasses.replace(ref, spill_dir=self.spill_dir)
            if name in self._segments:
                self._touch(name)
                return out
            if name in self._spilled or name in self._spilling:
                return out
            with _REGISTRY_LOCK:
                segment = _ATTACHED.pop(name, None)
            if segment is None:
                try:
                    # attaching registers this process with the resource
                    # tracker — kept, since the adopter owns the segment
                    # now and its eventual unlink() balances the entry
                    segment = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    # already unlinked elsewhere; resolution (if any) must
                    # go through a cached mapping or the ref's own tier
                    return ref
            else:
                # promote a cached attach (which dropped its tracker
                # entry) back to tracked ownership
                try:
                    resource_tracker.register(segment._name, "shared_memory")  # noqa: SLF001
                except Exception:
                    pass
            with _REGISTRY_LOCK:
                _OWNED[name] = segment
            nbytes = segment.size
            self._segments[name] = segment
            self._sizes[name] = nbytes
            self.bytes_adopted += nbytes
            self.bytes_resident += nbytes
            self._note_resident_peak()
            self._maybe_spill()
            return out

    def get(self, ref: BlockRef) -> np.ndarray:
        """Resolve a ref (works for refs from any store in any process)."""
        with self._lock:
            self._touch(ref.segment)
        return ref.resolve()

    def __len__(self) -> int:
        """Number of resident segments (spilled segments excluded)."""
        return len(self._segments)

    def __contains__(self, ref: BlockRef) -> bool:
        """Whether ``ref`` points at a segment this store owns (any tier)."""
        return isinstance(ref, BlockRef) and (ref.segment in self._segments
                                              or ref.segment in self._spilled
                                              or ref.segment in self._spilling)

    @property
    def closed(self) -> bool:
        """Whether :meth:`cleanup` ran."""
        return self._closed

    def spilled_names(self) -> frozenset:
        """Names of blocks currently demoted to the disk tier.

        Only fully spilled blocks are reported — blocks still in the
        write-behind ``enqueued``/``spilling`` states remain readable
        from shared memory everywhere and carry no disk-read cost yet.
        The locality-aware scheduler uses this view to recognise task
        refs whose resolution would hit the file tier, and to credit
        ``bytes_spill_reads_avoided`` when it routes such a task to a
        worker that still holds the block mapped.
        """
        with self._lock:
            return frozenset(self._spilled)

    # ------------------------------------------------------------------ #
    def _touch(self, name: str) -> None:
        """Mark segment ``name`` most recently used (no-op if not resident)."""
        if name in self._segments:
            self._segments.move_to_end(name)

    def _note_resident_peak(self) -> None:
        """Record a residency high-water mark (runs under the store lock)."""
        if self.bytes_resident > self.peak_resident_bytes:
            self.peak_resident_bytes = self.bytes_resident

    def _maybe_spill(self) -> None:
        """Evict cold segments, largest first, until under the watermark.

        Synchronous stores write the spill file in line (the full write
        lands in ``spill_wait_seconds``); write-behind stores enqueue the
        victim for the spill-writer thread and return immediately.  A
        store closed while an eviction waits on backpressure stops
        evicting — cleanup owns every remaining segment from that point.
        """
        if self.capacity_bytes is None:
            return
        while (self.bytes_resident > self.capacity_bytes and self._segments
               and not self._closed):
            victim = self._choose_victim()
            if self.spill_async:
                self._enqueue_spill(victim)
            else:
                start = time.perf_counter()
                self._spill_segment(victim)
                self.spill_wait_seconds += time.perf_counter() - start

    def _choose_victim(self) -> str:
        """Size-aware LRU eviction choice.

        Pure put/get-order eviction can push out many small blocks to make
        room that one cold oversized block would have freed in a single
        spill (and a single write).  Instead, the victim is the *largest*
        segment among the cold majority — everything except the
        most-recently-used quarter (always at least the single hottest
        segment), which stays protected so one oversized put cannot evict
        what the computation just touched.  Ties go to the least recently
        used of the largest, which reduces to classic LRU when all blocks
        are the same size.
        """
        names = list(self._segments)          # LRU -> MRU order
        protected = max(1, len(names) // 4)
        cold = names[:-protected] or names[:1]
        # max() keeps the first (= least recently used) of equal sizes
        return max(cold, key=self._sizes.__getitem__)

    def _write_block(self, name: str, segment: shared_memory.SharedMemory) -> None:
        """Write one segment's bytes to its spill file, atomically.

        Readers must never observe a partial block: the bytes go to a
        ``.tmp`` sibling first and are published with ``os.replace``.
        """
        path = os.path.join(self.spill_dir, name + ".blk")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(segment.buf)
        os.replace(tmp, path)

    def _demote_segment(self, name: str, segment: shared_memory.SharedMemory,
                        nbytes: int) -> None:
        """Retire a written-out segment from shared memory to the file tier.

        Only called once the block's spill file is in place, so refs can
        always resolve through one tier or the other.  Runs under the
        store lock.
        """
        with _REGISTRY_LOCK:
            _OWNED.pop(name, None)
        _quiet_unlink(segment)
        # live views may pin the mapping; park the segment instead of
        # closing under them (swept once the views are gone)
        _retire_or_close(segment)
        self._spilled[name] = nbytes

    def _spill_segment(self, name: str) -> None:
        """Move one resident segment to the disk tier, synchronously."""
        segment = self._segments.pop(name)
        nbytes = self._sizes.pop(name)
        self._write_block(name, segment)
        self._demote_segment(name, segment, nbytes)
        self.bytes_resident -= nbytes
        self.bytes_spilled += nbytes

    # ------------------------------------------------------------------ #
    # write-behind machinery
    # ------------------------------------------------------------------ #
    def _raise_spill_error(self) -> None:
        """Re-raise a failure recorded by the spill-writer thread.

        The error is sticky: once the writer has failed, every flush and
        every further eviction surfaces it instead of hanging on a queue
        nobody drains.  Before raising, every block still in the
        ``enqueued``/``spilling`` states is reinstated into the resident
        set — the dead writer will never demote them, so leaving their
        names in the registry would pin shared memory for the life of
        the store while ``bytes_resident`` claims they left (the leak a
        broken pool's recovery flush used to trip over).  Runs under the
        store lock.
        """
        if self._spill_error is not None:
            for name in list(self._spilling):
                self._reinstate_pending(name)
            raise RuntimeError("async spill writer failed") from self._spill_error

    def _enqueue_spill(self, name: str) -> None:
        """Hand one resident segment to the spill-writer thread.

        Runs under the store lock.  The block leaves the resident set
        immediately — ``bytes_resident`` and ``bytes_spilled`` account
        the eviction decision, not the file write, so the counters are
        deterministic — and enters the ``enqueued`` state, where its ref
        keeps resolving from shared memory.  A full queue blocks until
        the writer takes a block (backpressure); that blocked time is
        the put path's only remaining stall and is recorded in
        ``spill_wait_seconds``.
        """
        self._raise_spill_error()
        if self._spill_thread is None:
            self._spill_thread = threading.Thread(
                target=self._spill_writer, name="repro-spill-writer", daemon=True)
            self._spill_thread.start()
        segment = self._segments.pop(name)
        nbytes = self._sizes.pop(name)
        self._spilling[name] = (segment, nbytes)
        self.bytes_resident -= nbytes
        self.bytes_spilled += nbytes
        start = time.perf_counter()
        while (len(self._spill_queue) >= self.spill_queue_depth
               and not self._spill_stop and self._spill_error is None):
            self._spill_cv.wait()
        self.spill_wait_seconds += time.perf_counter() - start
        if self._spill_stop:
            return  # racing close: cleanup owns the spilling set now
        if self._spill_error is not None:
            # the writer died while we waited on backpressure: appending
            # to its queue would leak the name into the enqueued state
            # forever (nobody drains it), with bytes_resident already
            # decremented — the block would pin /dev/shm for the life of
            # the store while the accounting claims it left.  Reinstate
            # the victim (and every other pending block) and surface the
            # sticky error.
            self._raise_spill_error()
        self._spill_queue.append(name)
        self._spill_cv.notify_all()

    def _reinstate_pending(self, name: str) -> None:
        """Move an enqueued-but-unspilled block back to the resident set.

        Runs under the store lock.  Used when the spill writer has
        failed: the block never reached (and will never reach) the disk
        tier, so residency accounting and the LRU order must reflect
        that it is still in shared memory.
        """
        entry = self._spilling.pop(name, None)
        if entry is None:
            return
        segment, nbytes = entry
        self._segments[name] = segment
        self._segments.move_to_end(name, last=False)  # coldest: evict first later
        self._sizes[name] = nbytes
        self.bytes_resident += nbytes
        self._note_resident_peak()
        self.bytes_spilled -= nbytes
        try:
            self._spill_queue.remove(name)
        except ValueError:
            pass
        if self.spill_dir is not None:
            # a half-written .tmp from the failed write is garbage now
            try:
                os.remove(os.path.join(self.spill_dir, name + ".blk.tmp"))
            except OSError:
                pass

    def _spill_writer(self) -> None:
        """Drain the eviction queue: write each block, then demote it.

        The file write runs outside the store lock, so putters only ever
        contend on the (cheap) enqueue.  Taking a block off the queue
        immediately frees its backpressure slot — a putter blocked on a
        full queue resumes while the write is still in flight.
        """
        while True:
            with self._spill_cv:
                while not self._spill_queue and not self._spill_stop:
                    self._spill_cv.wait()
                if self._spill_stop:
                    return
                name = self._spill_queue.popleft()
                segment, nbytes = self._spilling[name]
                self._spill_cv.notify_all()  # slot freed: unblock putters
            start = time.perf_counter()
            try:
                self._write_block(name, segment)
            except BaseException as exc:  # noqa: BLE001 - surfaced on flush/put
                with self._spill_cv:
                    self._spill_error = exc
                    self._spill_cv.notify_all()
                return
            elapsed = time.perf_counter() - start
            with self._spill_cv:
                self.spill_hidden_seconds += elapsed
                if self._spill_stop:
                    return  # cleanup tears the spilling set down itself
                self._spilling.pop(name, None)
                self._demote_segment(name, segment, nbytes)
                self._spill_cv.notify_all()

    def flush_spill(self) -> None:
        """Barrier: block until every enqueued spill reached the disk tier.

        After it returns, no block is left in the ``enqueued`` or
        ``spilling`` state — every evicted ref resolves through its
        ``.blk`` file and the corresponding shm names are unlinked.
        Returns immediately on stores with no pending write-behind work
        (synchronous stores, stores that never spilled); re-raises a
        spill-writer failure instead of hanging on it.  On such a
        failure every enqueued-but-unspilled block is first reinstated
        into the resident set — their names must not linger in the
        registry's ``enqueued``/``spilling`` states with residency
        already discounted (the leak a broken pool's recovery flush used
        to trip over).
        """
        with self._spill_cv:
            while ((self._spill_queue or self._spilling)
                   and self._spill_error is None and not self._spill_stop):
                self._spill_cv.wait()
            self._raise_spill_error()

    def recover_spilled_block(self, name: str) -> bool:
        """Rewrite a lost or corrupted spill file from its source array.

        Task-payload blocks enter the store through deduplicating
        :meth:`put` calls, which pin the source array driver-side — so a
        spilled block whose ``.blk`` file was unlinked or truncated
        under a live run can be healed in place: the bytes are written
        again under the same segment name and every outstanding
        :class:`BlockRef` resolves bit-identically once more.  Streamed
        input chunks (:meth:`ingest`) carry no pinned array but register
        a source *loader* instead, and heal by re-reading their chunk
        file.  Blocks with no registered source of either kind (adopted
        worker results, ``dedup=False`` puts) cannot be healed this way;
        the resilience layer falls back to re-executing the producing
        task for those.

        Parameters
        ----------
        name : str
            Segment name of the lost block.

        Returns
        -------
        bool
            ``True`` when the block was rewritten; ``False`` when it is
            resident anyway, unknown, or has no registered source.
        """
        with self._lock:
            if self._closed or self.spill_dir is None:
                return False
            if name in self._segments or name in self._spilling:
                return False  # still resident: nothing to heal
            source = None
            for array, ref in self._registered.values():
                if ref.segment == name:
                    source = array
                    break
            if source is None:
                loader = self._sources.get(name)
                if loader is not None:
                    try:
                        source = np.asarray(loader())
                    except OSError:
                        return False  # source file itself is gone
            if source is None or name not in self._spilled:
                return False
            data = np.ascontiguousarray(source)
            path = os.path.join(self.spill_dir, name + ".blk")
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(data.data)
            os.replace(tmp, path)
        # stale cached mappings (of the unlinked or truncated inode) must
        # not shadow the healed file
        _invalidate_mapping(path)
        return True

    # ------------------------------------------------------------------ #
    def cleanup(self) -> None:
        """Close and unlink every owned segment and spill file (idempotent).

        Pending write-behind work is discarded, not flushed: the spill
        writer is stopped, blocks still in the ``enqueued`` / ``spilling``
        states are unlinked straight from shared memory, and any block
        files they already produced are removed with the rest of the
        disk tier — so a store closed (or a worker that dies) with a
        non-empty spill queue leaks neither ``/dev/shm`` names nor
        ``.blk`` files.
        """
        if self._closed:
            return
        with self._spill_cv:
            if self._closed:  # lost the race to another closer
                return
            self._closed = True
            self._spill_stop = True
            self._spill_queue.clear()
            thread = self._spill_thread
            self._spill_cv.notify_all()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=30.0)
        # the teardown sweep runs under the store lock: a put (or an
        # eviction loop) that raced the close either finished before
        # the sweep — and is swept with everything else — or observes
        # the closed flag under the same lock and backs out
        with self._lock:
            # blocks the writer never demoted go straight from shm to gone
            for name, (segment, _nbytes) in self._spilling.items():
                with _REGISTRY_LOCK:
                    _OWNED.pop(name, None)
                _quiet_unlink(segment)
                _retire_or_close(segment)
            doomed_files = set(self._spilled) | set(self._spilling)
            self._spilling.clear()
            for name, segment in self._segments.items():
                with _REGISTRY_LOCK:
                    _OWNED.pop(name, None)
                # unlink unconditionally so the name never outlives the
                # store, but only unmap when no caller still holds views
                # (result arrays are views into these segments)
                _quiet_unlink(segment)
                _retire_or_close(segment)
            self._segments.clear()
            self._sizes.clear()
            self._registered.clear()
            self._fingerprints.clear()
            self._sources.clear()
            self.bytes_resident = 0
            for name in doomed_files:
                path = os.path.join(self.spill_dir, name + ".blk")
                with _REGISTRY_LOCK:
                    mapped = _MAPPED.pop(path, None)
                if mapped is not None:
                    try:
                        mapped.close()
                    except Exception:
                        pass
                for leftover in (path, path + ".tmp"):
                    try:
                        os.remove(leftover)
                    except OSError:
                        pass
            self._spilled.clear()
        if self._owns_spill_dir and self.spill_dir is not None:
            try:
                os.rmdir(self.spill_dir)
            except OSError:
                pass
        try:
            atexit.unregister(self.cleanup)
        except Exception:
            pass
        try:
            self._finalizer.cancel()
        except Exception:
            pass

    close = cleanup


_file_counter = itertools.count()


class FileBackedStore:
    """Disk-tier store: the :class:`BlockRef` API over memory-mapped files.

    The pure-disk sibling of :class:`SharedMemoryStore` — every array is
    written once to a ``.blk`` file and refs resolve as read-only views
    of the page-cache-backed mapping.  Useful on its own for datasets
    that must never touch ``/dev/shm``, and as the executable
    specification of the spill tier (``SharedMemoryStore`` writes the
    identical format, so one resolver serves both).

    Parameters
    ----------
    directory : str, optional
        Where to place the block files.  When omitted a private
        temporary directory is created and removed by :meth:`cleanup`.

    Attributes
    ----------
    bytes_shared : int
        Cumulative unique array bytes written.
    """

    def __init__(self, directory: str | None = None) -> None:
        self._owns_dir = directory is None
        self.directory = directory or tempfile.mkdtemp(prefix="repro-filestore-")
        os.makedirs(self.directory, exist_ok=True)
        self._names: Dict[str, int] = {}
        self._registered: Dict[int, Tuple[np.ndarray, BlockRef]] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.bytes_shared = 0
        atexit.register(self.cleanup)
        self._finalizer = mp_util.Finalize(self, FileBackedStore.cleanup,
                                           args=(self,), exitpriority=10)

    def put(self, array: np.ndarray, dedup: bool = True) -> BlockRef:
        """Write ``array`` to a block file and return its ref.

        Parameters
        ----------
        array : numpy.ndarray
            Array to store (copied to the file; made C-contiguous).
        dedup : bool, optional
            Share the same array object at most once (see
            :meth:`SharedMemoryStore.put`).

        Returns
        -------
        BlockRef
            Handle resolving to a read-only memory-mapped view.
        """
        if self._closed:
            raise RuntimeError("FileBackedStore is closed")
        if not isinstance(array, np.ndarray):
            raise TypeError(f"FileBackedStore.put needs an ndarray, got {type(array)!r}")
        with self._lock:
            if dedup:
                hit = self._registered.get(id(array))
                if hit is not None:
                    return hit[1]
            data = np.ascontiguousarray(array)
            if data.nbytes == 0:
                raise ValueError("cannot share a zero-byte array")
            name = f"fbs-{os.getpid()}-{next(_file_counter)}-{uuid.uuid4().hex[:8]}"
            path = os.path.join(self.directory, name + ".blk")
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(data.data)
            os.replace(tmp, path)
            ref = BlockRef(segment=name, shape=tuple(data.shape),
                           dtype=data.dtype.str, spill_dir=self.directory)
            self._names[name] = data.nbytes
            if dedup:
                self._registered[id(array)] = (array, ref)
            self.bytes_shared += data.nbytes
            return ref

    def get(self, ref: BlockRef) -> np.ndarray:
        """Resolve a ref to a read-only view of its block file."""
        return ref.resolve()

    def __len__(self) -> int:
        """Number of blocks written."""
        return len(self._names)

    def __contains__(self, ref: BlockRef) -> bool:
        """Whether ``ref`` points at a block this store wrote."""
        return isinstance(ref, BlockRef) and ref.segment in self._names

    @property
    def closed(self) -> bool:
        """Whether :meth:`cleanup` ran."""
        return self._closed

    def cleanup(self) -> None:
        """Close mappings and remove every block file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for name in self._names:
            path = os.path.join(self.directory, name + ".blk")
            with _REGISTRY_LOCK:
                mapped = _MAPPED.pop(path, None)
            if mapped is not None:
                try:
                    mapped.close()
                except Exception:
                    pass
            try:
                os.remove(path)
            except OSError:
                pass
        self._names.clear()
        self._registered.clear()
        if self._owns_dir:
            try:
                os.rmdir(self.directory)
            except OSError:
                pass
        try:
            atexit.unregister(self.cleanup)
        except Exception:
            pass
        try:
            self._finalizer.cancel()
        except Exception:
            pass

    close = cleanup


def array_digest(array: np.ndarray) -> str:
    """Content fingerprint of an array: sha256 over dtype, shape and bytes.

    The dedup/identity primitive shared by the block registry (healing a
    spilled block re-verifies its source) and the checkpoint layer
    (:class:`~repro.frameworks.checkpoint.RunJournal` fingerprints the
    input ensemble so a journal written for different data is rejected,
    never silently reused).  Two arrays digest equal iff they are
    elementwise identical with the same dtype and shape.
    """
    import hashlib

    data = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(data.dtype.str).encode())
    digest.update(repr(tuple(data.shape)).encode())
    if data.nbytes:
        digest.update(data.data)
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# payload conversion
# --------------------------------------------------------------------------- #
def _walk(obj: Any, leaf) -> Any:
    """Rebuild ``obj`` applying ``leaf`` to every array/ref, sharing structure.

    Containers are only copied when something inside them changed, so the
    pickle-plane path through these helpers is a no-op returning ``obj``.
    """
    mapped = leaf(obj)
    if mapped is not obj:
        return mapped
    if isinstance(obj, list):
        new = [_walk(item, leaf) for item in obj]
        return new if any(a is not b for a, b in zip(new, obj)) else obj
    if isinstance(obj, tuple):
        new = tuple(_walk(item, leaf) for item in obj)
        if not any(a is not b for a, b in zip(new, obj)):
            return obj
        # preserve NamedTuple types: rebuilding as a bare tuple would
        # break attribute access task-side
        if hasattr(obj, "_fields"):
            return type(obj)(*new)
        return new
    if isinstance(obj, dict):
        new = {key: _walk(value, leaf) for key, value in obj.items()}
        return new if any(new[k] is not obj[k] for k in obj) else obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changed = {}
        for field in dataclasses.fields(obj):
            old = getattr(obj, field.name)
            new = _walk(old, leaf)
            if new is not old:
                changed[field.name] = new
        if not changed:
            return obj
        clone = copy.copy(obj)
        for name, value in changed.items():
            object.__setattr__(clone, name, value)
        return clone
    return obj


def share_payload(obj: Any, store: SharedMemoryStore) -> Tuple[Any, int]:
    """Swap every non-empty ndarray in ``obj`` for a :class:`BlockRef`.

    Parameters
    ----------
    obj : Any
        Task payload (arbitrarily nested dataclasses/lists/tuples/dicts).
    store : SharedMemoryStore
        Store the arrays are registered in (deduplicated store-wide).

    Returns
    -------
    converted : Any
        The payload with arrays replaced by refs (structure shared with
        ``obj`` where nothing changed).
    bytes_newly_shared : int
        Segment bytes this call added to the store (deduplicated arrays
        contribute zero).  Use :func:`refs_nbytes` on the converted
        payload for the per-task "bytes accessed through the plane"
        number.
    """
    before = store.bytes_shared

    def leaf(x: Any) -> Any:
        if isinstance(x, np.ndarray) and x.nbytes > 0:
            return store.put(x)
        return x

    converted = _walk(obj, leaf)
    return converted, store.bytes_shared - before


def resolve_payload(obj: Any) -> Any:
    """Swap every :class:`BlockRef` in ``obj`` back to a NumPy view.

    Payloads carrying more than one ref get read-ahead: before the
    first block is resolved, :func:`prefetch_refs` hints are issued for
    its siblings, so blocks that were spilled to the file tier stream
    into the page cache while the earlier blocks are being consumed —
    the resolve-side half of the write-behind spill pipeline.
    """
    refs: List[BlockRef] = []

    def collect(x: Any) -> Any:
        if isinstance(x, BlockRef):
            refs.append(x)
        return x

    _walk(obj, collect)
    if len(refs) > 1:
        prefetch_refs(refs[1:])

    def leaf(x: Any) -> Any:
        if isinstance(x, BlockRef):
            return x.resolve()
        return x

    return _walk(obj, leaf)


def publish_payload(obj: Any) -> Tuple[Any, int]:
    """Publish a result payload's arrays into fresh shm segments (worker side).

    The cross-process counterpart of :func:`share_payload` for the
    *result* path: no store object survives pickling into a pool worker,
    so the worker creates standalone segments, returns refs, and the
    driver takes over their lifetime with :func:`adopt_payload`.
    Segments are tracked process-locally until the refs are returned;
    anything a crashed task leaves behind is unlinked at process exit.

    Parameters
    ----------
    obj : Any
        The task's result (arbitrarily nested).

    Returns
    -------
    converted : Any
        The result with every non-empty array replaced by a
        :class:`BlockRef`.
    bytes_published : int
        Array bytes written into the published segments.
    """
    _install_publish_hook()
    published = 0

    def leaf(x: Any) -> Any:
        nonlocal published
        if isinstance(x, np.ndarray) and x.nbytes > 0:
            # pid-keyed name: a publisher that dies before hand-off can
            # be identified and its segments swept by the driver
            segment, ref = _copy_into_segment(
                x, name_prefix=f"{PUBLISH_PREFIX}-{os.getpid()}")
            # the driver's store owns the lifetime once it adopts the
            # ref; drop the tracker registration so this process's exit
            # does not tear the segment down underneath it
            _unregister_from_tracker(segment)
            with _REGISTRY_LOCK:
                _PUBLISHED[segment.name] = segment
            published += ref.nbytes
            return ref
        return x

    converted = _walk(obj, leaf)
    return converted, published


def mark_handed_off(obj: Any) -> None:
    """Release crash-cleanup tracking for a published payload's segments.

    Call once the converted payload is definitely on its way to the
    driver (serialized for return): from that point the driver's adopt
    is responsible for the segments, and the publisher's exit hook must
    not unlink them.

    Parameters
    ----------
    obj : Any
        A payload previously converted by :func:`publish_payload`.
    """

    def leaf(x: Any) -> Any:
        if isinstance(x, BlockRef):
            with _REGISTRY_LOCK:
                segment = _PUBLISHED.pop(x.segment, None)
            if segment is not None:
                # keep the local mapping cached: same-process adopters
                # (in-process pools) reuse it instead of re-attaching
                with _REGISTRY_LOCK:
                    _ATTACHED.setdefault(x.segment, segment)
        return x

    _walk(obj, leaf)


def adopt_payload(obj: Any, store: SharedMemoryStore) -> Any:
    """Adopt and resolve a published result payload (driver side).

    Every ref's segment is adopted into ``store`` — so it is unlinked at
    cleanup, counted against the capacity watermark, and spilled when
    the store runs past it — and the ref is resolved to a read-only
    zero-copy view.

    Parameters
    ----------
    obj : Any
        Result payload containing :class:`BlockRef` handles.
    store : SharedMemoryStore
        The store that takes ownership of the segments.

    Returns
    -------
    Any
        The payload with every ref replaced by its array view.
    """

    def leaf(x: Any) -> Any:
        if isinstance(x, BlockRef):
            return store.adopt(x).resolve()
        return x

    return _walk(obj, leaf)


def refs_nbytes(obj: Any) -> int:
    """Total array bytes referenced (not moved) by the refs inside ``obj``."""
    total = 0

    def leaf(x: Any) -> Any:
        nonlocal total
        if isinstance(x, BlockRef):
            total += x.nbytes
        return x

    _walk(obj, leaf)
    return total


def collect_refs(obj: Any) -> List[BlockRef]:
    """Every :class:`BlockRef` inside ``obj``, in payload-walk order.

    The locality-aware scheduler calls this once per staged payload to
    learn which blocks a task will resolve, so it can score candidate
    workers by how much of the task's data they already hold.

    Payload wrappers that are not walkable containers (plain classes the
    generic walk cannot descend into, like the pilot's ``ComputeUnit``)
    can expose a ``__refs_payload__`` attribute holding the walkable
    part of their payload; it is collected in place of the wrapper.
    """
    refs: List[BlockRef] = []

    def leaf(x: Any) -> Any:
        if isinstance(x, BlockRef):
            refs.append(x)
        return x

    _walk(getattr(obj, "__refs_payload__", obj), leaf)
    return refs


def maybe_resolve(value: Any) -> Any:
    """Return ``value.resolve()`` for a :class:`BlockRef`, ``value`` otherwise."""
    if isinstance(value, BlockRef):
        return value.resolve()
    return value


class ResolvingTask:
    """Picklable wrapper: resolve the payload's refs, call ``fn``, share the result.

    Substrates wrap the user's task function with this when running on
    the shm data plane, so the function still receives plain arrays
    while only refs cross the task boundary — in both directions.

    Parameters
    ----------
    fn : callable
        The task function.
    result_store : SharedMemoryStore, optional
        In-process mode: result arrays are written straight into this
        store (with the spill tier applying) and refs are returned.
        Stores do not pickle, so this mode is for executors whose tasks
        share the driver's address space.
    publish_results : bool, optional
        Cross-process mode: result arrays are published into standalone
        segments with :func:`publish_payload` for the driver to adopt.
        Mutually exclusive with ``result_store``.
    """

    def __init__(self, fn, result_store: SharedMemoryStore | None = None,
                 publish_results: bool = False) -> None:
        if result_store is not None and publish_results:
            raise ValueError("result_store and publish_results are mutually exclusive")
        self.fn = fn
        self.result_store = result_store
        self.publish_results = publish_results

    def __call__(self, item: Any) -> Any:
        """Run the task over the resolved payload and convert its result."""
        result = self.fn(resolve_payload(item))
        if self.result_store is not None:
            def leaf(x: Any) -> Any:
                if isinstance(x, np.ndarray) and x.nbytes > 0:
                    return self.result_store.put(x, dedup=False)
                return x

            return _walk(result, leaf)
        if self.publish_results:
            converted, _ = publish_payload(result)
            mark_handed_off(converted)
            return converted
        return result
