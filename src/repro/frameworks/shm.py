"""Zero-copy shared-memory data plane.

The paper attributes most of the gap between the Python task-parallel
frameworks and MPI to serialization: every trajectory block and every
position chunk is pickled into the task payload, shipped, and unpickled,
even when producer and consumer share a node.  This module removes that
cost for NumPy payloads:

* :class:`SharedMemoryStore` places an array in a named
  ``multiprocessing.shared_memory`` segment exactly once and returns a
  :class:`BlockRef` — a tiny picklable handle (segment name, shape, dtype,
  offset).
* :class:`BlockRef.resolve` rehydrates the handle as a NumPy *view* of the
  segment, in the owning process or in any worker process that attaches by
  name.  No bytes are copied or pickled for the array payload itself.
* :func:`share_payload` / :func:`resolve_payload` walk arbitrary task
  payloads (dataclasses, lists, tuples, dicts) swapping arrays for refs
  and back, so existing task types move onto the data plane unchanged.

Every framework substrate accepts ``data_plane="pickle"|"shm"``; with
``"shm"`` the task payload that crosses the (real or accounted) process
boundary shrinks from the array bytes to the ref bytes, and the array
bytes are reported separately as *shared* — the split the fig8 broadcast
experiment quantifies.
"""

from __future__ import annotations

import atexit
import copy
import dataclasses
import threading
from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

from multiprocessing import resource_tracker, shared_memory

__all__ = [
    "DATA_PLANES",
    "BlockRef",
    "SharedMemoryStore",
    "share_payload",
    "resolve_payload",
    "refs_nbytes",
    "maybe_resolve",
    "ResolvingTask",
]

#: Valid values for the ``data_plane`` option on frameworks and the public API.
DATA_PLANES = ("pickle", "shm")

# Process-local segment registries.  ``_OWNED`` holds segments created by
# stores in this process (resolving a ref to an owned segment is a pure
# dictionary lookup); ``_ATTACHED`` caches segments this process attached
# to by name, so repeated resolves of worker-side refs reuse one mapping.
_OWNED: Dict[str, shared_memory.SharedMemory] = {}
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_REGISTRY_LOCK = threading.Lock()


def _unregister_from_tracker(segment: shared_memory.SharedMemory) -> None:
    """Undo the resource tracker's registration of an *attached* segment.

    Attaching to an existing segment registers it with the resource
    tracker as if this process owned it, which makes the tracker unlink
    (or warn about) the segment when any attaching process exits.  The
    creator's :class:`SharedMemoryStore` owns the lifetime, so attachers
    must not be tracked.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """Segment by name: owned registry, attach cache, or a fresh attach."""
    with _REGISTRY_LOCK:
        segment = _OWNED.get(name) or _ATTACHED.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name)
            _unregister_from_tracker(segment)
            _ATTACHED[name] = segment
        return segment


@dataclass(frozen=True)
class BlockRef:
    """Lightweight handle to an array stored in a shared-memory segment.

    A ref pickles to a few hundred bytes regardless of the array size;
    :meth:`resolve` returns a read-only NumPy view of the segment (zero
    copies).  Refs are immutable and hashable, so they can be deduplicated
    and reused across many tasks.
    """

    segment: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int = 0

    @property
    def nbytes(self) -> int:
        """Bytes of array data the ref points at (not bytes it pickles to)."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize

    def resolve(self) -> np.ndarray:
        """Rehydrate as a read-only NumPy view of the shared segment."""
        segment = _attach(self.segment)
        view = np.ndarray(self.shape, dtype=self.dtype, buffer=segment.buf,
                          offset=self.offset)
        view.flags.writeable = False
        return view

    def slice_rows(self, start: int, stop: int) -> "BlockRef":
        """A sub-ref covering rows ``start:stop`` along the first axis.

        This is how partitioners hand out per-task chunks without copying:
        the sub-ref shares the parent segment and only adjusts offset and
        shape.  Requires the stored array to be C-contiguous, which
        :meth:`SharedMemoryStore.put` guarantees.
        """
        if not self.shape:
            raise ValueError("cannot row-slice a 0-d BlockRef")
        start, stop, _ = slice(start, stop).indices(self.shape[0])
        row_items = 1
        for dim in self.shape[1:]:
            row_items *= int(dim)
        itemsize = np.dtype(self.dtype).itemsize
        return BlockRef(
            segment=self.segment,
            shape=(max(0, stop - start),) + tuple(self.shape[1:]),
            dtype=self.dtype,
            offset=self.offset + start * row_items * itemsize,
        )


class SharedMemoryStore:
    """Registry of arrays placed in shared memory, keyed by segment name.

    ``put`` copies an array into a fresh segment once and returns a
    :class:`BlockRef`; putting the same array object again returns the
    existing ref (so a 2-D block decomposition that reuses every
    trajectory in ~2·N/n1 tasks still shares each one exactly once).
    ``cleanup`` closes and unlinks every owned segment; it also runs at
    interpreter exit as a backstop against leaked ``/dev/shm`` entries.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        # id(array) -> (array, ref); the array reference keeps the id stable
        self._registered: Dict[int, Tuple[np.ndarray, BlockRef]] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.bytes_shared = 0
        atexit.register(self.cleanup)

    # ------------------------------------------------------------------ #
    def put(self, array: np.ndarray) -> BlockRef:
        """Place ``array`` in shared memory (once) and return its ref."""
        if self._closed:
            raise RuntimeError("SharedMemoryStore is closed")
        if not isinstance(array, np.ndarray):
            raise TypeError(f"SharedMemoryStore.put needs an ndarray, got {type(array)!r}")
        key = id(array)
        with self._lock:
            hit = self._registered.get(key)
            if hit is not None:
                return hit[1]
            data = np.ascontiguousarray(array)
            if data.nbytes == 0:
                raise ValueError("cannot share a zero-byte array")
            segment = shared_memory.SharedMemory(create=True, size=data.nbytes)
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
            np.copyto(view, data)
            ref = BlockRef(segment=segment.name, shape=tuple(data.shape),
                           dtype=data.dtype.str)
            self._segments[segment.name] = segment
            _OWNED[segment.name] = segment
            self._registered[key] = (array, ref)
            self.bytes_shared += data.nbytes
            return ref

    def get(self, ref: BlockRef) -> np.ndarray:
        """Resolve a ref (works for refs from any store in any process)."""
        return ref.resolve()

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, ref: BlockRef) -> bool:
        return isinstance(ref, BlockRef) and ref.segment in self._segments

    @property
    def closed(self) -> bool:
        """Whether :meth:`cleanup` ran."""
        return self._closed

    def cleanup(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for name, segment in self._segments.items():
            _OWNED.pop(name, None)
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        self._segments.clear()
        self._registered.clear()
        try:
            atexit.unregister(self.cleanup)
        except Exception:
            pass

    close = cleanup


# --------------------------------------------------------------------------- #
# payload conversion
# --------------------------------------------------------------------------- #
def _walk(obj: Any, leaf) -> Any:
    """Rebuild ``obj`` applying ``leaf`` to every array/ref, sharing structure.

    Containers are only copied when something inside them changed, so the
    pickle-plane path through these helpers is a no-op returning ``obj``.
    """
    mapped = leaf(obj)
    if mapped is not obj:
        return mapped
    if isinstance(obj, list):
        new = [_walk(item, leaf) for item in obj]
        return new if any(a is not b for a, b in zip(new, obj)) else obj
    if isinstance(obj, tuple):
        new = tuple(_walk(item, leaf) for item in obj)
        return new if any(a is not b for a, b in zip(new, obj)) else obj
    if isinstance(obj, dict):
        new = {key: _walk(value, leaf) for key, value in obj.items()}
        return new if any(new[k] is not obj[k] for k in obj) else obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changed = {}
        for field in dataclasses.fields(obj):
            old = getattr(obj, field.name)
            new = _walk(old, leaf)
            if new is not old:
                changed[field.name] = new
        if not changed:
            return obj
        clone = copy.copy(obj)
        for name, value in changed.items():
            object.__setattr__(clone, name, value)
        return clone
    return obj


def share_payload(obj: Any, store: SharedMemoryStore) -> Tuple[Any, int]:
    """Swap every non-empty ndarray in ``obj`` for a :class:`BlockRef`.

    Returns ``(converted, bytes_newly_shared)`` where the byte count is
    the segment bytes this call added to the store (deduplicated arrays
    contribute zero).  Use :func:`refs_nbytes` on the converted payload
    for the per-task "bytes accessed through the plane" number.
    """
    before = store.bytes_shared

    def leaf(x: Any) -> Any:
        if isinstance(x, np.ndarray) and x.nbytes > 0:
            return store.put(x)
        return x

    converted = _walk(obj, leaf)
    return converted, store.bytes_shared - before


def resolve_payload(obj: Any) -> Any:
    """Swap every :class:`BlockRef` in ``obj`` back to a NumPy view."""

    def leaf(x: Any) -> Any:
        if isinstance(x, BlockRef):
            return x.resolve()
        return x

    return _walk(obj, leaf)


def refs_nbytes(obj: Any) -> int:
    """Total array bytes referenced (not moved) by the refs inside ``obj``."""
    total = 0

    def leaf(x: Any) -> Any:
        nonlocal total
        if isinstance(x, BlockRef):
            total += x.nbytes
        return x

    _walk(obj, leaf)
    return total


def maybe_resolve(value: Any) -> Any:
    """``value.resolve()`` for a :class:`BlockRef`, ``value`` otherwise."""
    if isinstance(value, BlockRef):
        return value.resolve()
    return value


class ResolvingTask:
    """Picklable wrapper: resolve the payload's refs, then call ``fn``.

    Substrates wrap the user's task function with this when running on the
    shm data plane, so the function still receives plain arrays while only
    refs cross the task boundary.
    """

    def __init__(self, fn) -> None:
        self.fn = fn

    def __call__(self, item: Any) -> Any:
        return self.fn(resolve_payload(item))
