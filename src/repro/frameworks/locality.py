"""Locality-aware task placement: block scoring and delay scheduling.

The paper's central measurement is that data movement, not compute,
dominates Python task frameworks.  The pooled process executors drove
that cost down with a shared-memory plane and a write-behind spill tier
— but placement stayed blind: a task whose input blocks spilled to disk
was handed to whichever worker freed up first, paying a cold file read
while the worker that still held those blocks memory-mapped sat idle.

This module is the placement brain the engine consults.  It is pure
bookkeeping over sets and byte counts — no processes, no clocks of its
own — so the scheduling policy is exactly unit-testable:

* :class:`TaskBlocks` describes what one task will resolve (the block
  names inside its payload, with their sizes);
* :class:`LocalityScheduler` scores pending tasks against a free lane's
  *resident set* (the block names that lane's worker process reported it
  holds mapped) and returns a :class:`Placement`.

The policy is classic delay scheduling: prefer the task whose spilled
bytes the lane already covers; a task affine to a *different* lane may
wait up to ``wait_s`` for that lane to free before any other lane is
allowed to steal it — affinity must never idle the pool.  Blocks that
are resident in shared memory are deliberately ignored by the scoring:
shm segments cost the same from every process on the node, so only the
``spilled`` tier — where resolution means a disk read unless the lane
already mapped the file — can make one placement cheaper than another.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

from .shm import BlockRef

__all__ = ["TaskBlocks", "Placement", "LocalityScheduler"]


@dataclass(frozen=True)
class TaskBlocks:
    """The blocks one task will resolve, as names with byte sizes.

    Parameters
    ----------
    index : int
        Position of the task in the submitted batch.
    names : frozenset of str
        Segment names of every :class:`~repro.frameworks.shm.BlockRef`
        in the task's payload.
    nbytes : mapping of str to int
        Bytes each named block contributes to this task.  Sub-refs
        slicing the same segment are collapsed to the largest view, so
        a block never weighs more than the file a cold resolve reads.
    """

    index: int
    names: frozenset
    nbytes: Mapping[str, int]

    @classmethod
    def from_refs(cls, index: int, refs: Sequence[BlockRef]) -> "TaskBlocks":
        """Build the block summary of one task from its payload refs.

        Parameters
        ----------
        index : int
            Task position in the submitted batch.
        refs : sequence of BlockRef
            The refs collected from the task's payload (see
            :func:`~repro.frameworks.shm.collect_refs`).

        Returns
        -------
        TaskBlocks
            Deduplicated name/size summary.
        """
        sizes: Dict[str, int] = {}
        for ref in refs:
            sizes[ref.segment] = max(sizes.get(ref.segment, 0), ref.nbytes)
        return cls(index=index, names=frozenset(sizes), nbytes=sizes)


@dataclass(frozen=True)
class Placement:
    """One scheduling decision: which task a free lane should run.

    Parameters
    ----------
    index : int
        The chosen task.
    lane : int
        The lane it was chosen for.
    local : bool
        Whether the lane's resident set covers every spilled block the
        task needs — the placement incurs no cold disk read.  Tasks
        with no spilled inputs are local by definition.
    bytes_avoided : int
        Spilled-block bytes the task would have read cold on an
        arbitrary worker but finds already mapped on this lane.
    missing : frozenset of str
        Spilled block names the lane does *not* hold — the refs worth
        prefetching at dispatch so the page cache warms while the task
        travels to the worker.
    """

    index: int
    lane: int
    local: bool
    bytes_avoided: int
    missing: frozenset


class LocalityScheduler:
    """Delay-scheduling placement over per-worker resident sets.

    For each free lane the engine asks :meth:`choose`, which ranks the
    pending tasks:

    1. a task whose spilled blocks the lane (partially) covers — the
       best-covered one wins, ties to queue order;
    2. a task with no spilled inputs at all — nothing to place for,
       run the oldest;
    3. a task whose spilled blocks *no* lane covers — someone must pay
       the first cold read, and an idle lane is the cheapest place;
    4. a task affine to a different lane: *held* for up to ``wait_s``
       (counted from the first time it was passed over) hoping that
       lane frees; past the bound the free lane steals it.

    When every pending task is in state 4 and none has waited out its
    bound, :meth:`choose` returns ``None`` and the lane stays idle for
    one engine wait round — bounded by the policy's heartbeat interval,
    so holds are re-evaluated promptly.

    Parameters
    ----------
    tasks : sequence of TaskBlocks
        One entry per task in the batch (indexed by task index).
    wait_s : float
        Delay-scheduling bound (``FaultPolicy.locality_wait_s``).
    clock : callable, optional
        Monotonic time source (injectable for tests).
    """

    def __init__(self, tasks: Sequence[TaskBlocks], wait_s: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._tasks: Dict[int, TaskBlocks] = {t.index: t for t in tasks}
        self.wait_s = wait_s
        self._clock = clock
        self._held: Dict[int, float] = {}

    def names_for(self, index: int) -> frozenset:
        """Every block name task ``index`` resolves (all tiers)."""
        task = self._tasks.get(index)
        return task.names if task is not None else frozenset()

    def _covered(self, task: TaskBlocks, spill_names: frozenset,
                 resident: frozenset) -> int:
        """Bytes of ``task``'s spilled blocks found in ``resident``."""
        return sum(task.nbytes[name] for name in spill_names & resident)

    def choose(self, pending: Sequence[int], lane: int, resident: frozenset,
               others: Mapping[int, frozenset], spilled: frozenset,
               now: Optional[float] = None) -> Optional[Placement]:
        """Pick the task a free lane should run next, if any.

        Parameters
        ----------
        pending : sequence of int
            Task indices awaiting dispatch, in queue order.
        lane : int
            The free lane being filled.
        resident : frozenset of str
            Block names the lane's worker holds resident (its last
            report, unioned with the blocks of tasks dispatched to it
            since).
        others : mapping of int to frozenset
            Resident sets of the *other* live lanes, keyed by lane id.
        spilled : frozenset of str
            Block names currently demoted to the disk tier (see
            :meth:`~repro.frameworks.shm.SharedMemoryStore.spilled_names`).
        now : float, optional
            Timestamp for hold bookkeeping; defaults to the scheduler's
            clock.

        Returns
        -------
        Placement or None
            The decision, or ``None`` when every pending task is worth
            holding for a busier lane with better affinity.
        """
        if now is None:
            now = self._clock()
        best: Optional[Placement] = None
        best_covered = 0
        fallback: Optional[Placement] = None  # case 2/3: nothing gained here
        stolen: Optional[Placement] = None    # case 4 past its wait bound
        for index in pending:
            task = self._tasks.get(index)
            if task is None:
                # a task with no block summary has nothing to score;
                # treat it like a spill-free task (case 2)
                if fallback is None:
                    fallback = Placement(index, lane, True, 0, frozenset())
                continue
            spill_names = task.names & spilled
            if not spill_names:
                if fallback is None:
                    fallback = Placement(index, lane, True, 0, frozenset())
                self._held.pop(index, None)
                continue
            covered = self._covered(task, spill_names, resident)
            if covered > best_covered:
                spill_bytes = sum(task.nbytes[name] for name in spill_names)
                best = Placement(index, lane, covered >= spill_bytes, covered,
                                 spill_names - resident)
                best_covered = covered
                continue
            if covered > 0:
                continue  # partially covered by an earlier, better task
            elsewhere = any(spill_names & other for other in others.values())
            if not elsewhere:
                # cold everywhere: the first toucher seeds the affinity
                if fallback is None:
                    fallback = Placement(index, lane, False, 0, spill_names)
                self._held.pop(index, None)
                continue
            first_held = self._held.setdefault(index, now)
            if now - first_held >= self.wait_s:
                if stolen is None:
                    stolen = Placement(index, lane, False, 0,
                                       spill_names - resident)
        placement = best or fallback or stolen
        if placement is None:
            return None  # every pending task is held within its wait bound
        self._held.pop(placement.index, None)
        return placement
