"""The ``delayed`` API: build task graphs from ordinary function calls.

The paper's Dask implementations define their tasks as delayed functions
("In Dask, the tasks are defined as delayed functions").  A
:class:`Delayed` object wraps a function call whose evaluation is
postponed; calling a delayed-wrapped function with other Delayed objects
as arguments builds up an arbitrary task DAG, which ``compute`` hands to a
scheduler.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Sequence

from .graph import KeyRef, TaskGraph, TaskSpec
from .scheduler import SchedulerBase, get_scheduler

__all__ = ["Delayed", "delayed", "compute"]

_key_counter = itertools.count()


def _new_key(name: str) -> str:
    return f"{name}-{next(_key_counter)}"


class Delayed:
    """A lazily evaluated function call (node of a task graph)."""

    def __init__(self, key: str, fn: Callable[..., Any],
                 args: tuple, kwargs: dict,
                 children: Sequence["Delayed"]) -> None:
        self.key = key
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self._children = list(children)

    # ------------------------------------------------------------------ #
    def _add_to_graph(self, graph: TaskGraph) -> None:
        if self.key in graph:
            return
        for child in self._children:
            child._add_to_graph(graph)
        args = tuple(_delayed_to_ref(a) for a in self._args)
        kwargs = {k: _delayed_to_ref(v) for k, v in self._kwargs.items()}
        graph.add_task(self.key, TaskSpec(self._fn, args, kwargs))

    def graph(self) -> TaskGraph:
        """The task graph rooted at this node."""
        graph = TaskGraph()
        self._add_to_graph(graph)
        return graph

    def compute(self, scheduler: str | SchedulerBase = "sync", workers: int = 4) -> Any:
        """Evaluate this node (and everything it depends on)."""
        return compute(self, scheduler=scheduler, workers=workers)[0]

    def visualize_keys(self) -> List[str]:
        """Keys of the task graph in topological order (debugging aid)."""
        graph = self.graph()
        return [str(k) for k in graph.topological_order([self.key])]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Delayed {self.key}>"


def _find_children(value: Any) -> List[Delayed]:
    if isinstance(value, Delayed):
        return [value]
    if isinstance(value, (list, tuple)):
        out: List[Delayed] = []
        for item in value:
            out.extend(_find_children(item))
        return out
    if isinstance(value, dict):
        out = []
        for item in value.values():
            out.extend(_find_children(item))
        return out
    return []


def _delayed_to_ref(value: Any) -> Any:
    if isinstance(value, Delayed):
        return KeyRef(value.key)
    if isinstance(value, list):
        return [_delayed_to_ref(v) for v in value]
    if isinstance(value, tuple):
        return tuple(_delayed_to_ref(v) for v in value)
    if isinstance(value, dict):
        return {k: _delayed_to_ref(v) for k, v in value.items()}
    return value


def delayed(fn: Callable[..., Any], *, name: str | None = None) -> Callable[..., Delayed]:
    """Wrap ``fn`` so that calling it returns a :class:`Delayed` node.

    Examples
    --------
    >>> inc = delayed(lambda x: x + 1)
    >>> total = delayed(sum)([inc(1), inc(2)])
    >>> total.compute()
    5
    """
    label = name or getattr(fn, "__name__", "task")

    def wrapper(*args: Any, **kwargs: Any) -> Delayed:
        children = _find_children(args) + _find_children(kwargs)
        return Delayed(_new_key(label), fn, args, kwargs, children)

    wrapper.__name__ = f"delayed_{label}"
    return wrapper


def compute(*delayeds: Delayed, scheduler: str | SchedulerBase = "sync",
            workers: int = 4) -> tuple:
    """Evaluate several Delayed objects sharing one graph/scheduler pass."""
    if not delayeds:
        return ()
    graph = TaskGraph()
    for node in delayeds:
        if not isinstance(node, Delayed):
            raise TypeError(f"compute() arguments must be Delayed, got {type(node)!r}")
        node._add_to_graph(graph)
    sched = scheduler if isinstance(scheduler, SchedulerBase) else get_scheduler(scheduler, workers)
    results = sched.execute(graph, [node.key for node in delayeds])
    return tuple(results[node.key] for node in delayeds)
