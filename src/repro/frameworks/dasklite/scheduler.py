"""Dependency-driven schedulers for task graphs.

Dask offers several schedulers (synchronous, threaded, distributed).  The
defining property the paper highlights is that tasks run *as soon as their
dependencies are satisfied* — there is no stage barrier.  Two schedulers
are provided:

* :class:`SynchronousScheduler` — executes the culled graph in topological
  order in the calling thread (deterministic; used in tests),
* :class:`ThreadedScheduler` — event-driven execution on a thread pool: a
  task is submitted the moment its last dependency finishes.

Both record per-task timings so that framework overhead can be separated
from useful work.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Dict, Hashable, Iterable

from .graph import GraphError, TaskGraph

__all__ = ["SchedulerBase", "SynchronousScheduler", "ThreadedScheduler", "get_scheduler"]


class SchedulerBase:
    """Common scheduler interface: ``execute(graph, targets) -> dict``."""

    def __init__(self) -> None:
        self.task_durations: Dict[Hashable, float] = {}

    def execute(self, graph: TaskGraph, targets: Iterable[Hashable]) -> Dict[Hashable, Any]:
        """Compute ``targets`` and return ``{key: value}`` for each target."""
        raise NotImplementedError

    @property
    def total_task_time(self) -> float:
        """Sum of task durations of the most recent execution."""
        return sum(self.task_durations.values())


class SynchronousScheduler(SchedulerBase):
    """Single-threaded, deterministic scheduler."""

    def execute(self, graph: TaskGraph, targets: Iterable[Hashable]) -> Dict[Hashable, Any]:
        targets = list(targets)
        order = graph.topological_order(targets)
        self.task_durations = {}
        results: Dict[Hashable, Any] = {}
        for key in order:
            if graph.is_literal(key):
                results[key] = graph.literal(key)
                continue
            start = time.perf_counter()
            results[key] = graph.spec(key).resolve(results)
            self.task_durations[key] = time.perf_counter() - start
        return {key: results[key] for key in targets}


class ThreadedScheduler(SchedulerBase):
    """Event-driven thread-pool scheduler (no stage barriers).

    A task is submitted to the pool as soon as every dependency has a
    result; completed results immediately unlock their dependents.  This is
    the behaviour that gives Dask its low task latency in the paper's
    throughput experiment.
    """

    def __init__(self, workers: int = 4) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def execute(self, graph: TaskGraph, targets: Iterable[Hashable]) -> Dict[Hashable, Any]:
        targets = list(targets)
        order = graph.topological_order(targets)
        needed = set(order)
        self.task_durations = {}
        results: Dict[Hashable, Any] = {}
        remaining_deps: Dict[Hashable, set] = {}
        dependents: Dict[Hashable, set] = {k: set() for k in needed}
        for key in order:
            deps = graph.dependencies(key) & needed
            remaining_deps[key] = set(deps)
            for dep in deps:
                dependents[dep].add(key)
        for key in order:
            if graph.is_literal(key):
                results[key] = graph.literal(key)
        ready = [k for k in order
                 if not graph.is_literal(k)
                 and all(d in results for d in remaining_deps[k])]
        pending_count = sum(1 for k in order if not graph.is_literal(k))

        def run(key: Hashable) -> tuple:
            start = time.perf_counter()
            value = graph.spec(key).resolve(results)
            return key, value, time.perf_counter() - start

        completed = 0
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            in_flight: Dict[Future, Hashable] = {}
            for key in ready:
                in_flight[pool.submit(run, key)] = key
            submitted = set(ready)
            while in_flight:
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    key = in_flight.pop(future)
                    finished_key, value, duration = future.result()
                    results[finished_key] = value
                    self.task_durations[finished_key] = duration
                    completed += 1
                    for child in dependents.get(finished_key, ()):  # unlock dependents
                        if graph.is_literal(child) or child in submitted:
                            continue
                        if all(d in results for d in remaining_deps[child]):
                            in_flight[pool.submit(run, child)] = child
                            submitted.add(child)
        if completed != pending_count:
            raise GraphError(
                f"scheduler completed {completed} of {pending_count} tasks; "
                "graph may be malformed"
            )
        return {key: results[key] for key in targets}


def get_scheduler(kind: str = "threads", workers: int = 4) -> SchedulerBase:
    """Factory: ``"sync"`` / ``"synchronous"`` or ``"threads"``."""
    if kind in ("sync", "synchronous", "serial"):
        return SynchronousScheduler()
    if kind in ("threads", "threaded"):
        return ThreadedScheduler(workers=workers)
    raise ValueError(f"unknown scheduler kind {kind!r}")
