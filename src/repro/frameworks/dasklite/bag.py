"""Dask-Bag-style collection API.

Dask Bags are the MapReduce-flavoured collection the paper mentions as the
functional abstraction of Dask ("Dask Bags are similar to Spark RDDs").
A :class:`Bag` is a partitioned, lazily evaluated collection built on top
of the delayed/task-graph machinery; ``map``/``filter``/``map_partitions``
are narrow, ``fold``/``frequencies``/``groupby`` perform a concat-style
reduction.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Hashable, Iterable, List, Sequence

from ..sparklite.partitioner import split_into_partitions
from .graph import KeyRef, TaskGraph, TaskSpec
from .scheduler import SchedulerBase, get_scheduler

__all__ = ["Bag", "from_sequence"]

_bag_counter = itertools.count()


class Bag:
    """A partitioned collection with lazy element-wise operations.

    Internally every partition is one node of a task graph; operations add
    new layers of nodes.  ``compute`` culls and executes the graph.
    """

    def __init__(self, graph: TaskGraph, partition_keys: Sequence[Hashable]) -> None:
        if not partition_keys:
            raise ValueError("a Bag needs at least one partition")
        self._graph = graph
        self._partition_keys = list(partition_keys)

    # ------------------------------------------------------------------ #
    @property
    def npartitions(self) -> int:
        """Number of partitions."""
        return len(self._partition_keys)

    def _derive(self, fn: Callable[[List[Any]], List[Any]], label: str) -> "Bag":
        """Add one task per partition applying ``fn`` to the partition list."""
        new_keys = []
        bag_id = next(_bag_counter)
        for i, key in enumerate(self._partition_keys):
            new_key = f"{label}-{bag_id}-{i}"
            self._graph.add_task(new_key, TaskSpec(fn, (KeyRef(key),)))
            new_keys.append(new_key)
        return Bag(self._graph, new_keys)

    # ------------------------------------------------------------------ #
    # element-wise (narrow) operations
    # ------------------------------------------------------------------ #
    def map(self, fn: Callable[[Any], Any]) -> "Bag":
        """Apply ``fn`` to every element."""
        return self._derive(lambda part: [fn(x) for x in part], "map")

    def filter(self, predicate: Callable[[Any], bool]) -> "Bag":
        """Keep elements satisfying ``predicate``."""
        return self._derive(lambda part: [x for x in part if predicate(x)], "filter")

    def flatten(self) -> "Bag":
        """Concatenate element iterables inside each partition."""
        return self._derive(
            lambda part: [x for sub in part for x in sub], "flatten"
        )

    def map_partitions(self, fn: Callable[[List[Any]], Iterable[Any]]) -> "Bag":
        """Apply ``fn`` to whole partitions."""
        return self._derive(lambda part: list(fn(part)), "map_partitions")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def fold(self, binop: Callable[[Any, Any], Any], initial: Any = None,
             scheduler: str | SchedulerBase = "sync", workers: int = 4) -> Any:
        """Reduce all elements with ``binop`` (tree reduction over partitions).

        ``initial`` is applied exactly once (to the final combine), so
        ``fold(add, initial=100)`` adds 100 to the total regardless of the
        partition count.
        """
        partials = []
        for part in self._compute_partitions(scheduler, workers):
            iterator = iter(part)
            try:
                acc = next(iterator)
            except StopIteration:
                continue
            for item in iterator:
                acc = binop(acc, item)
            partials.append(acc)
        if not partials:
            if initial is not None:
                return initial
            raise ValueError("fold() of an empty Bag with no initial value")
        result = initial if initial is not None else partials[0]
        for value in (partials if initial is not None else partials[1:]):
            result = binop(result, value)
        return result

    def frequencies(self, scheduler: str | SchedulerBase = "sync", workers: int = 4) -> dict:
        """Count occurrences of each distinct element."""
        counts: dict = {}
        for part in self._compute_partitions(scheduler, workers):
            for item in part:
                counts[item] = counts.get(item, 0) + 1
        return counts

    def groupby(self, key_fn: Callable[[Any], Hashable],
                scheduler: str | SchedulerBase = "sync", workers: int = 4) -> dict:
        """Group elements by ``key_fn`` (materializes the bag)."""
        groups: dict = {}
        for part in self._compute_partitions(scheduler, workers):
            for item in part:
                groups.setdefault(key_fn(item), []).append(item)
        return groups

    def count(self, scheduler: str | SchedulerBase = "sync", workers: int = 4) -> int:
        """Number of elements."""
        return sum(len(part) for part in self._compute_partitions(scheduler, workers))

    # ------------------------------------------------------------------ #
    def _compute_partitions(self, scheduler: str | SchedulerBase = "sync",
                            workers: int = 4) -> List[List[Any]]:
        sched = scheduler if isinstance(scheduler, SchedulerBase) else get_scheduler(scheduler, workers)
        results = sched.execute(self._graph, self._partition_keys)
        return [results[key] for key in self._partition_keys]

    def compute(self, scheduler: str | SchedulerBase = "sync", workers: int = 4) -> List[Any]:
        """Materialize the bag as a flat list."""
        return [x for part in self._compute_partitions(scheduler, workers) for x in part]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Bag npartitions={self.npartitions}>"


def from_sequence(data: Sequence[Any], npartitions: int = 4) -> Bag:
    """Create a Bag from a driver-side sequence."""
    graph = TaskGraph()
    keys = []
    bag_id = next(_bag_counter)
    for i, chunk in enumerate(split_into_partitions(list(data), npartitions)):
        key = f"from_sequence-{bag_id}-{i}"
        graph.add_literal(key, chunk)
        keys.append(key)
    return Bag(graph, keys)
