"""Task graphs.

Dask represents computations as a dict-like task graph: every key maps to
either a literal value or a ``(callable, arg_keys...)`` spec.  The graph is
a DAG; Dask's scheduler executes a task as soon as its dependencies are
satisfied (no stage barrier).  This module provides the graph container,
dependency extraction, topological ordering and cycle detection used by
both the delayed API and the Bag API.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Set, Tuple

__all__ = ["TaskSpec", "TaskGraph", "GraphError"]


class GraphError(ValueError):
    """Raised for malformed task graphs (cycles, missing keys)."""


class TaskSpec:
    """A single node: ``fn(*args)`` where args may reference other keys.

    Arguments that are :class:`KeyRef` instances are resolved to the value
    of the referenced key at execution time; everything else is passed
    through literally.
    """

    def __init__(self, fn: Callable[..., Any], args: Tuple[Any, ...] = (),
                 kwargs: Mapping[str, Any] | None = None) -> None:
        if not callable(fn):
            raise TypeError("TaskSpec fn must be callable")
        self.fn = fn
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})

    def dependencies(self) -> Set[Hashable]:
        """Keys of other graph nodes this task depends on."""
        deps: Set[Hashable] = set()
        for value in list(self.args) + list(self.kwargs.values()):
            deps |= _refs_in(value)
        return deps

    def resolve(self, results: Mapping[Hashable, Any]) -> Any:
        """Execute the task given the results of its dependencies."""
        args = [_substitute(a, results) for a in self.args]
        kwargs = {k: _substitute(v, results) for k, v in self.kwargs.items()}
        return self.fn(*args, **kwargs)


class KeyRef:
    """A reference to another key in the graph."""

    __slots__ = ("key",)

    def __init__(self, key: Hashable) -> None:
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeyRef({self.key!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KeyRef) and other.key == self.key

    def __hash__(self) -> int:
        return hash(("KeyRef", self.key))


def _refs_in(value: Any) -> Set[Hashable]:
    if isinstance(value, KeyRef):
        return {value.key}
    if isinstance(value, (list, tuple)):
        out: Set[Hashable] = set()
        for item in value:
            out |= _refs_in(item)
        return out
    if isinstance(value, dict):
        out = set()
        for item in value.values():
            out |= _refs_in(item)
        return out
    return set()


def _substitute(value: Any, results: Mapping[Hashable, Any]) -> Any:
    if isinstance(value, KeyRef):
        return results[value.key]
    if isinstance(value, list):
        return [_substitute(v, results) for v in value]
    if isinstance(value, tuple):
        return tuple(_substitute(v, results) for v in value)
    if isinstance(value, dict):
        return {k: _substitute(v, results) for k, v in value.items()}
    return value


class TaskGraph:
    """A DAG of :class:`TaskSpec` nodes and literal values."""

    def __init__(self) -> None:
        self._tasks: Dict[Hashable, TaskSpec] = {}
        self._literals: Dict[Hashable, Any] = {}

    # ------------------------------------------------------------------ #
    def add_literal(self, key: Hashable, value: Any) -> None:
        """Insert a pre-computed value under ``key``."""
        if key in self._tasks or key in self._literals:
            raise GraphError(f"duplicate graph key {key!r}")
        self._literals[key] = value

    def add_task(self, key: Hashable, spec: TaskSpec) -> None:
        """Insert a task node under ``key``."""
        if key in self._tasks or key in self._literals:
            raise GraphError(f"duplicate graph key {key!r}")
        self._tasks[key] = spec

    def __contains__(self, key: Hashable) -> bool:
        return key in self._tasks or key in self._literals

    def __len__(self) -> int:
        return len(self._tasks) + len(self._literals)

    @property
    def task_keys(self) -> List[Hashable]:
        """Keys of task (non-literal) nodes."""
        return list(self._tasks)

    @property
    def literal_keys(self) -> List[Hashable]:
        """Keys of literal nodes."""
        return list(self._literals)

    def spec(self, key: Hashable) -> TaskSpec:
        """The :class:`TaskSpec` under ``key``."""
        return self._tasks[key]

    def literal(self, key: Hashable) -> Any:
        """The literal value under ``key``."""
        return self._literals[key]

    def is_literal(self, key: Hashable) -> bool:
        """True if ``key`` names a literal value."""
        return key in self._literals

    # ------------------------------------------------------------------ #
    def dependencies(self, key: Hashable) -> Set[Hashable]:
        """Keys this node depends on (empty for literals)."""
        if key in self._literals:
            return set()
        spec = self._tasks.get(key)
        if spec is None:
            raise GraphError(f"unknown graph key {key!r}")
        deps = spec.dependencies()
        missing = [d for d in deps if d not in self]
        if missing:
            raise GraphError(f"task {key!r} depends on missing keys {missing}")
        return deps

    def dependents(self) -> Dict[Hashable, Set[Hashable]]:
        """Reverse dependency map: key -> set of keys that need it."""
        out: Dict[Hashable, Set[Hashable]] = {k: set() for k in list(self._tasks) + list(self._literals)}
        for key in self._tasks:
            for dep in self.dependencies(key):
                out[dep].add(key)
        return out

    def topological_order(self, targets: Iterable[Hashable] | None = None) -> List[Hashable]:
        """Keys in an order where dependencies come before dependents.

        When ``targets`` is given only the keys needed to compute the
        targets are returned (graph culling, as Dask performs).  Raises
        :class:`GraphError` on cycles.
        """
        if targets is None:
            needed = set(self._tasks) | set(self._literals)
        else:
            needed = set()
            stack = list(targets)
            while stack:
                key = stack.pop()
                if key in needed:
                    continue
                if key not in self:
                    raise GraphError(f"unknown graph key {key!r}")
                needed.add(key)
                stack.extend(self.dependencies(key))
        indegree: Dict[Hashable, int] = {}
        dependents: Dict[Hashable, Set[Hashable]] = {k: set() for k in needed}
        for key in needed:
            deps = self.dependencies(key) & needed
            indegree[key] = len(deps)
            for dep in deps:
                dependents[dep].add(key)
        queue = deque(sorted((k for k, deg in indegree.items() if deg == 0), key=repr))
        order: List[Hashable] = []
        while queue:
            key = queue.popleft()
            order.append(key)
            for child in sorted(dependents[key], key=repr):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if len(order) != len(needed):
            raise GraphError("task graph contains a cycle")
        return order
