"""Distributed-style Client/Future API and the DaskLite framework facade.

``dask.distributed`` exposes a ``Client`` with ``submit``/``map``/
``gather``/``scatter``; the paper uses exactly these to run delayed
functions on a cluster and to scatter ("broadcast") the physical system in
Leaflet Finder approach 1.  :class:`DaskLiteClient` implements the same
surface on top of the dependency-driven schedulers, and doubles as the
:class:`~repro.frameworks.base.TaskFramework` implementation used by
:mod:`repro.core`.

One behaviour of real Dask that the paper calls out is reproduced
faithfully: ``scatter(list)`` partitions the dataset into *per-element*
futures (the paper notes this prevented broadcasting the 524k-atom system
with Dask).  ``scatter(array, broadcast=True)`` ships the object whole.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Iterable, List, Sequence

from ..base import BroadcastHandle, RunMetrics, TaskFramework
from ..cluster import ClusterSpec
from ..executors import ExecutorBase
from ..serialization import nbytes_of, serialized_size
from ..shm import BlockRef, resolve_payload
from ..sparklite.partitioner import split_array_into_partitions
from .bag import Bag, from_sequence
from .delayed import Delayed, compute, delayed
from .scheduler import SchedulerBase, SynchronousScheduler, ThreadedScheduler

__all__ = ["Future", "ScatteredData", "DaskLiteClient"]

_future_counter = itertools.count()


class Future:
    """Handle to the result of a submitted task."""

    def __init__(self, key: str, value: Any = None, done: bool = False) -> None:
        self.key = key
        self._value = value
        self._done = done

    def done(self) -> bool:
        """Whether the result is available."""
        return self._done

    def result(self) -> Any:
        """The task's result (tasks run eagerly in this implementation)."""
        if not self._done:
            raise RuntimeError(f"future {self.key} has no result")
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "finished" if self._done else "pending"
        return f"<Future {self.key} {status}>"


class ScatteredData:
    """Result of ``Client.scatter``: data resident on the workers.

    ``broadcast=True`` keeps the object whole on every worker (size counted
    once per node); ``broadcast=False`` on a list splits it element-wise —
    this mirrors Dask's actual scatter semantics that the paper found
    limiting for approach 1.
    """

    def __init__(self, pieces: List[Any], nbytes: int, broadcast: bool) -> None:
        self.pieces = pieces
        self.nbytes = nbytes
        self.broadcast = broadcast

    @property
    def value(self) -> Any:
        """The scattered object (re-assembled view for broadcast scatters)."""
        if self.broadcast:
            return self.pieces[0]
        return self.pieces


class DaskLiteClient(TaskFramework):
    """Dask-style framework substrate (delayed + bag + client APIs).

    Parameters
    ----------
    cluster, executor, workers:
        See :class:`~repro.frameworks.base.TaskFramework`.  The executor
        choice also selects the graph scheduler: ``"serial"`` maps to the
        synchronous scheduler, anything else to the threaded
        dependency-driven scheduler.
    data_plane, store_capacity_bytes, spill_dir, spill_async, spill_queue_depth:
        Data-plane and spill-tier configuration (see
        :class:`~repro.frameworks.base.TaskFramework`).  On the shm
        plane the store also backs streamed ingestion
        (:meth:`~repro.frameworks.shm.SharedMemoryStore.ingest`): chunk
        blocks dedup by fingerprint, spill under the same watermark, and
        surface as ``bytes_ingested`` / ``peak_resident_bytes`` in the
        run metrics.
    fault_policy, faults:
        Resilience configuration (see
        :class:`~repro.frameworks.base.TaskFramework`).
    """

    name = "dasklite"

    # tasks run on the graph scheduler, not on self.executor
    _executor_runs_tasks = False

    def __init__(self, cluster: ClusterSpec | None = None,
                 executor: str | ExecutorBase = "threads",
                 workers: int | None = None,
                 data_plane: str = "pickle",
                 store_capacity_bytes: int | None = None,
                 spill_dir: str | None = None,
                 spill_async: bool = True,
                 spill_queue_depth: int = 4,
                 fault_policy=None, faults=None) -> None:
        super().__init__(cluster=cluster, executor=executor, workers=workers,
                         data_plane=data_plane,
                         store_capacity_bytes=store_capacity_bytes,
                         spill_dir=spill_dir, spill_async=spill_async,
                         spill_queue_depth=spill_queue_depth,
                         fault_policy=fault_policy, faults=faults)
        if isinstance(executor, str) and executor == "serial":
            self.scheduler: SchedulerBase = SynchronousScheduler()
        else:
            self.scheduler = ThreadedScheduler(workers=self.executor.workers)
        self._scattered: List[ScatteredData] = []

    # ------------------------------------------------------------------ #
    # client API
    # ------------------------------------------------------------------ #
    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Run ``fn(*args, **kwargs)`` and return a Future."""
        key = f"submit-{next(_future_counter)}"
        start = time.perf_counter()
        value = fn(*args, **kwargs)
        self.metrics.record_event("submit", time.perf_counter() - start)
        return Future(key, value, done=True)

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Future]:
        """Run ``fn`` over ``items`` in parallel and return Futures."""
        results = self.map_tasks(fn, items)
        return [Future(f"map-{next(_future_counter)}", value, done=True)
                for value in results]

    def gather(self, futures: Iterable[Future]) -> List[Any]:
        """Collect the results of several futures.

        On the shm data plane a future's value may be (or contain) a
        :class:`~repro.frameworks.shm.BlockRef`; gather resolves refs to
        zero-copy views so callers always receive plain arrays, exactly
        like ``dask.distributed.Client.gather`` dereferences remote
        data.
        """
        return [resolve_payload(f.result()) for f in futures]

    def scatter(self, data: Any, broadcast: bool = False) -> ScatteredData:
        """Place data on the workers ahead of computation.

        With ``broadcast=True`` the object is replicated whole to every
        node (cost counted once per node in the metrics); with the default
        ``broadcast=False`` a list is split element-wise, reproducing the
        behaviour the paper describes for Dask's scatter of the physical
        system.
        """
        ref = self._share_value(data)
        if ref is not None:
            # shm plane: the workers attach to one resident copy; only the
            # refs would cross the wire.  broadcast=True replicates the
            # whole-object ref; broadcast=False reproduces Dask's
            # piecewise scatter as zero-copy per-worker row chunks.
            # nbytes follows the pickle branch's single-copy convention.
            if broadcast:
                pieces = [ref]
                nbytes = serialized_size(ref)
            else:
                pieces = split_array_into_partitions(ref, max(1, self.executor.workers))
                nbytes = sum(serialized_size(piece) for piece in pieces)
            scattered = ScatteredData(pieces, nbytes, broadcast=broadcast)
            self._scattered.append(scattered)
            self.metrics.bytes_broadcast += scattered.nbytes
            self.metrics.bytes_shared += ref.nbytes
            return scattered
        if broadcast:
            nbytes = nbytes_of(data) * max(1, self.cluster.nodes)
            scattered = ScatteredData([data], nbytes_of(data), broadcast=True)
        else:
            pieces = list(data) if isinstance(data, (list, tuple)) else [data]
            nbytes = sum(nbytes_of(p) for p in pieces)
            scattered = ScatteredData(pieces, nbytes, broadcast=False)
        self._scattered.append(scattered)
        self.metrics.bytes_broadcast += scattered.nbytes if broadcast else nbytes
        return scattered

    # ------------------------------------------------------------------ #
    # delayed / bag entry points
    # ------------------------------------------------------------------ #
    def delayed(self, fn: Callable[..., Any]) -> Callable[..., Delayed]:
        """Wrap a function in the delayed API."""
        return delayed(fn)

    def compute(self, *nodes: Delayed) -> tuple:
        """Evaluate delayed nodes on this client's scheduler."""
        return compute(*nodes, scheduler=self.scheduler)

    def bag_from_sequence(self, data: Sequence[Any], npartitions: int = 4) -> Bag:
        """Create a Bag partitioned over this client's workers."""
        return from_sequence(data, npartitions=npartitions)

    def compute_bag(self, bag: Bag) -> List[Any]:
        """Materialize a Bag on this client's scheduler."""
        return bag.compute(scheduler=self.scheduler)

    # ------------------------------------------------------------------ #
    # uniform TaskFramework surface
    # ------------------------------------------------------------------ #
    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run independent tasks as one delayed graph (one node per task).

        Tasks execute on the graph scheduler, not on ``self.executor``,
        so the resilience layer's retry loop wraps the task function
        here — a failing node is re-executed in place and the graph
        never sees the failure, the equivalent of Dask replaying the
        upstream of a lost key.
        """
        items = list(items)
        self.metrics = RunMetrics(tasks_submitted=len(items))
        fn, items = self._apply_data_plane(fn, items)
        fn = self._fault_wrap(fn)
        start = time.perf_counter()
        if not items:
            return []
        dfn = delayed(fn)
        nodes = [dfn(item) for item in items]
        results = list(compute(*nodes, scheduler=self.scheduler))
        wall = time.perf_counter() - start
        # the graph hands back ref payloads on the shm plane: gather
        # them through the store (adopt + zero-copy resolve)
        results = self._finish_results(results)
        self.metrics.tasks_completed = len(results)
        self.metrics.wall_time_s = wall
        self.metrics.task_time_s = self.scheduler.total_task_time
        workers = max(1, getattr(self.scheduler, "workers", 1))
        self.metrics.overhead_s = max(0.0, wall - self.metrics.task_time_s / workers)
        self._collect_executor_bytes()
        return results

    def broadcast(self, value: Any) -> BroadcastHandle:
        """Broadcast via scatter(..., broadcast=True).

        On the shm plane the handle carries the shared-memory ref and the
        array bytes appear as ``bytes_shared`` instead of moved bytes.
        """
        scattered = self.scatter(value, broadcast=True)
        piece = scattered.pieces[0]
        if isinstance(piece, BlockRef):
            return BroadcastHandle(value=piece, nbytes=scattered.nbytes,
                                   framework=self.name, bytes_shared=piece.nbytes)
        return BroadcastHandle(value=value, nbytes=scattered.nbytes, framework=self.name)
