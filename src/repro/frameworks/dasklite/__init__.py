"""dasklite: a Dask-style substrate (delayed graphs, bags, client/futures)."""

from .bag import Bag, from_sequence
from .delayed import Delayed, compute, delayed
from .distributed import DaskLiteClient, Future, ScatteredData
from .graph import GraphError, KeyRef, TaskGraph, TaskSpec
from .scheduler import (
    SchedulerBase,
    SynchronousScheduler,
    ThreadedScheduler,
    get_scheduler,
)

__all__ = [
    "DaskLiteClient",
    "Future",
    "ScatteredData",
    "Delayed",
    "delayed",
    "compute",
    "Bag",
    "from_sequence",
    "TaskGraph",
    "TaskSpec",
    "KeyRef",
    "GraphError",
    "SchedulerBase",
    "SynchronousScheduler",
    "ThreadedScheduler",
    "get_scheduler",
]
