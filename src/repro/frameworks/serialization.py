"""Serialization accounting.

Communication volume drives most of the performance differences the paper
reports (broadcast of the full system in Leaflet Finder approach 1, edge
list vs partial-component shuffles in approaches 2 vs 3).  Every framework
substrate therefore measures the serialized size of whatever it broadcasts
or shuffles using the helpers here, so that the reproduction can report
the same "shuffle data reduced by >50% (100 MB -> 12 MB)" style numbers.
"""

from __future__ import annotations

import dataclasses
import pickle
import sys
from typing import Any

import numpy as np

__all__ = ["serialized_size", "nbytes_of", "estimate_transfer_time"]


def serialized_size(obj: Any, protocol: int = pickle.HIGHEST_PROTOCOL) -> int:
    """Size in bytes of ``obj`` when pickled.

    This is what actually crosses process boundaries for Python-level
    frameworks (Dask, PySpark via py4j, RADICAL-Pilot file staging), so it
    is the honest measure of broadcast/shuffle volume.
    """
    return len(pickle.dumps(obj, protocol=protocol))


def nbytes_of(obj: Any) -> int:
    """Cheap in-memory size estimate.

    Uses ``.nbytes`` for NumPy arrays, recurses into lists, tuples,
    dicts and dataclass instances (the shape of every task payload), and
    falls back to :func:`sys.getsizeof` otherwise.  Used where computing
    a full pickle would itself be expensive (for example the 4M-atom
    broadcast ablation).
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (list, tuple)):
        return int(sys.getsizeof(obj)) + sum(nbytes_of(item) for item in obj)
    if isinstance(obj, dict):
        return int(sys.getsizeof(obj)) + sum(
            nbytes_of(k) + nbytes_of(v) for k, v in obj.items()
        )
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return int(sys.getsizeof(obj)) + sum(
            nbytes_of(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        )
    return int(sys.getsizeof(obj))


def estimate_transfer_time(nbytes: int, bandwidth_gbps: float = 10.0,
                           latency_s: float = 1e-4) -> float:
    """Time to move ``nbytes`` over a link of ``bandwidth_gbps`` gigabits/s.

    Simple latency + size/bandwidth model; used by the perfmodel when
    charging for broadcasts and shuffles at paper scale.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if bandwidth_gbps <= 0:
        raise ValueError("bandwidth must be positive")
    bytes_per_second = bandwidth_gbps * 1e9 / 8.0
    return latency_s + nbytes / bytes_per_second
