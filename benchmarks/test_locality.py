"""Locality-aware placement economics — affinity routing vs blind FIFO.

Placement only earns its keep if steering tasks to the workers that
already hold their spilled blocks beats handing them to whichever lane
frees first.  This benchmark builds an over-capacity PSA workload with
a skewed reuse pattern — a few *hub* trajectories far too large for the
store (they spill; the small spoke trajectories stay resident in shared
memory) and one task per hub x spoke pair — then samples two full
distributions of the identical run: locality placement ON and OFF.
With FIFO fan-out consecutive tasks over the same hub land on different
lanes, so every worker ends up paying the cold read of every hub; with
placement ON each hub is read cold roughly once and its remaining tasks
ride the resident mapping.

The disk tier is pinned with the ``REPRO_COLD_READ_BW_MBS`` cost model
(CI page cache would otherwise hide exactly the cost placement
avoids), identically for both configs — so the gate measures placement
quality (the *number* of cold attaches) rather than CI disk variance.
The acceptance floor is the PR's headline number: **locality ON must be
at least 1.5x faster**, gated as ``median(off/on) - k*MAD > 1.5``,
never as a single-run ratio.  Bit-identical results are asserted on
both paths before any timing is trusted.

The full distribution record is written to ``BENCH_locality.json`` and,
when ``REPRO_BENCH_HISTORY=1``, appended to ``BENCH_history.jsonl``.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import speedup_samples
from repro.core.psa import PSA_METRICS
from repro.frameworks.executors import SharedMemoryExecutor
from repro.frameworks.faults import FaultPolicy
from repro.frameworks.shm import SharedMemoryStore

LOCALITY_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_locality.json"
LOCALITY_SUITE = "locality"
LOCALITY_FLOOR = 1.5        # locality ON > 1.5x faster than FIFO placement

LOCALITY_WORKERS = 3
N_HUBS = 4                  # large trajectories that spill
N_SPOKES = 6                # small trajectories that stay resident
HUB_FRAMES = 3000           # ~1.1 MiB per hub block (16 atoms x 3 x f8)
SPOKE_FRAMES = 8
N_ATOMS = 16
COLD_READ_BW_MBS = "20"     # ~56 ms per cold hub attach, deterministic

_LOCALITY_RECORDS: list = []


def hub_spoke_distance(pair):
    """Hausdorff distance for one (hub, spoke) trajectory pair."""
    hub, spoke = pair
    return float(PSA_METRICS["hausdorff"](np.asarray(hub), np.asarray(spoke)))


def _trajectory(rng, n_frames):
    return rng.standard_normal((n_frames, N_ATOMS, 3))


@pytest.fixture(scope="module")
def hub_spoke_store(tmp_path_factory):
    """An over-capacity store: every hub block on the disk tier.

    The capacity watermark sits below a single hub, so each hub put
    evicts it straight to the spill directory while the spokes (tiny,
    most-recently used) stay resident — the big half of the data is
    spilled, which is exactly the tier placement can and must win on.
    """
    rng = np.random.default_rng(2018)
    spill_dir = tmp_path_factory.mktemp("locality-spill")
    store = SharedMemoryStore(capacity_bytes=256 * 1024,
                              spill_dir=str(spill_dir),
                              spill_async=False)
    hub_refs = [store.put(_trajectory(rng, HUB_FRAMES)) for _ in range(N_HUBS)]
    spoke_refs = [store.put(_trajectory(rng, SPOKE_FRAMES))
                  for _ in range(N_SPOKES)]
    spilled = store.spilled_names()
    assert {ref.segment for ref in hub_refs} <= spilled
    yield store, hub_refs, spoke_refs
    store.cleanup()


def _run_once(store, tasks, policy):
    """One timed run of the hub x spoke workload on fresh worker lanes."""
    ex = SharedMemoryExecutor(workers=LOCALITY_WORKERS, store=store,
                              fault_policy=policy)
    try:
        start = time.perf_counter()
        results = ex.map_tasks(hub_spoke_distance, tasks)
        elapsed = time.perf_counter() - start
        placed = (ex.total_tasks_local, ex.total_tasks_remote,
                  ex.total_bytes_spill_reads_avoided)
    finally:
        ex.shutdown()
    return elapsed, results, placed


def test_locality_beats_fifo_placement(bench_sampler, bench_gate,
                                       bench_history, hub_spoke_store,
                                       monkeypatch):
    """PR 10 acceptance: affinity placement > 1.5x over blind FIFO.

    Every sample spins up fresh worker lanes (cold resident sets), so
    each run pays its own cold attaches under the pinned cost model.
    The OFF config is the identical engine with the scheduler disabled;
    the ON config must beat it through fewer cold reads alone.
    """
    monkeypatch.setenv("REPRO_COLD_READ_BW_MBS", COLD_READ_BW_MBS)
    store, hub_refs, spoke_refs = hub_spoke_store
    # hub-major order: FIFO fans consecutive same-hub tasks across lanes
    tasks = [(hub, spoke) for hub in hub_refs for spoke in spoke_refs]
    n_tasks = len(tasks)

    _, reference, _ = _run_once(store, tasks, FaultPolicy())

    placements: list = []

    def run_off() -> float:
        elapsed, results, _ = _run_once(store, tasks, FaultPolicy())
        assert results == reference
        return elapsed

    def run_on() -> float:
        elapsed, results, placed = _run_once(
            store, tasks,
            FaultPolicy(locality=True, locality_wait_s=0.3))
        assert results == reference
        local, remote, avoided = placed
        assert local + remote == n_tasks
        assert avoided > 0
        placements.append(placed)
        return elapsed

    # sequential, non-interleaved: the whole OFF distribution first,
    # then the whole ON distribution (same protocol as the recovery
    # benchmark)
    off_dist = bench_sampler.sample_values(run_off, label="placement off")
    on_dist = bench_sampler.sample_values(run_on, label="placement on")

    speedups = speedup_samples(off_dist.samples, on_dist.samples)
    verdict = bench_gate.check_speedup(off_dist, on_dist,
                                       floor=LOCALITY_FLOOR)
    assert verdict.passed, verdict.reason

    stats = bench_gate.speedup_stats(off_dist, on_dist)
    workload = (f"psa[hausdorff] hub x spoke, {N_HUBS} spilled hubs x "
                f"{N_SPOKES} resident spokes, {n_tasks} tasks, "
                f"{LOCALITY_WORKERS} lanes, cold-read model "
                f"{COLD_READ_BW_MBS} MB/s")
    _LOCALITY_RECORDS.append({
        "workload": workload,
        "gating": True,
        "floor": LOCALITY_FLOOR,
        "n_tasks": n_tasks,
        "locality_speedup_median": stats["speedup_median"],
        "locality_speedup_mad": stats["speedup_mad"],
        "locality_speedup_lower_bound": stats["speedup_lower_bound"],
        "n_speedup_samples": len(speedups),
        "tasks_local_last": placements[-1][0],
        "tasks_remote_last": placements[-1][1],
        "bytes_spill_reads_avoided_last": placements[-1][2],
        "gate_passed": verdict.passed,
        "gate_reason": verdict.reason,
        "placement_off": off_dist.to_dict(),
        "placement_on": on_dist.to_dict(),
    })
    if bench_history is not None:
        bench_history.append(LOCALITY_SUITE, "locality_vs_fifo_placement",
                             workload,
                             {"placement_off": off_dist,
                              "placement_on": on_dist},
                             stats={**stats, "floor": LOCALITY_FLOOR,
                                    "gating": True,
                                    "gate_passed": verdict.passed})


@pytest.fixture(scope="module", autouse=True)
def write_locality_record():
    """Persist the locality comparison, even on partial runs."""
    yield
    if _LOCALITY_RECORDS:
        LOCALITY_RECORD_PATH.write_text(json.dumps({
            "suite": "locality: affinity placement vs FIFO fan-out",
            "protocol": {
                "statistic": "median of pairwise off/on samples",
                "gate": "median - k*MAD > floor",
            },
            "rows": _LOCALITY_RECORDS,
        }, indent=2) + "\n")
