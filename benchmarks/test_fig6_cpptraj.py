"""Figure 6 — the compiled (CPPTraj-style) 2D-RMSD comparator.

Live benchmark: the vectorized GEMM-based 2D-RMSD kernel vs the naive
Python loop on identical inputs (the compiled-vs-interpreted contrast the
figure makes).  Modeled assertions: near-linear scaling to ~100 cores,
Intel build ~2x faster than GNU, compiled comparator faster than the
Python frameworks in absolute terms.
"""

import numpy as np
import pytest

from repro.analysis.rmsd import pairwise_rmsd_loop, rmsd_matrix
from repro.experiments import fig6_cpptraj
from repro.perfmodel import WRANGLER, model_psa_runtime
from repro.perfmodel.scaling import model_cpptraj_runtime


@pytest.fixture(scope="module")
def trajectory_pair(bench_ensemble):
    arrays = bench_ensemble.as_arrays()
    return arrays[0], arrays[1]


def test_fig6_vectorized_kernel_live(benchmark, trajectory_pair):
    """The optimized kernel (stands in for the compiled CPPTraj 2D-RMSD)."""
    a, b = trajectory_pair
    matrix = benchmark(lambda: rmsd_matrix(a, b))
    assert matrix.shape == (a.shape[0], b.shape[0])


def test_fig6_naive_kernel_live(benchmark, trajectory_pair):
    """The unoptimized per-frame loop (the 'no optimization' build analogue)."""
    a, b = trajectory_pair
    matrix = benchmark(lambda: pairwise_rmsd_loop(a, b))
    assert np.allclose(matrix, rmsd_matrix(a, b), atol=1e-10)


def test_fig6_vectorized_beats_naive(benchmark, trajectory_pair):
    rows = benchmark(lambda: fig6_cpptraj.measured_rows(n_pairs=4, n_frames=24, scale=0.01))
    assert rows[0]["speedup_vs_naive"] > 3.0


def test_fig6_modeled_shape(benchmark):
    """Intel ~2x GNU; near-linear scaling at low core counts; saturation later."""
    rows = benchmark(lambda: fig6_cpptraj.modeled_rows(core_counts=(1, 20, 120, 240)))
    by = {(r["framework"], r["cores"]): r for r in rows}
    assert by[("cpptraj-intel-O3", 120)]["runtime_s"] < by[("cpptraj-gnu", 120)]["runtime_s"]
    ratio = by[("cpptraj-gnu", 120)]["runtime_s"] / by[("cpptraj-intel-O3", 120)]["runtime_s"]
    assert 1.4 <= ratio <= 2.5
    # near-linear from 1 to 20 cores, clearly sub-linear by 240
    assert by[("cpptraj-gnu", 20)]["speedup"] > 12
    assert by[("cpptraj-gnu", 240)]["speedup"] < 200
    # the compiled comparator beats the Python frameworks in absolute runtime
    assert by[("cpptraj-gnu", 240)]["runtime_s"] < model_psa_runtime("dask", WRANGLER, cores=256)
    assert model_cpptraj_runtime(240) < model_cpptraj_runtime(20)
