"""Data-plane ablation — pickle vs shared-memory payloads.

The paper blames serialization for most of the gap between the Python
frameworks and MPI; the shm data plane removes it.  These benchmarks run
the identical workload on both planes and assert the accounting the fig8
extension reports: the shm plane moves strictly fewer bytes while the
results stay bit-identical.  Noise-aware assertions only — wall-clock
wins at laptop scale are within scheduler jitter for small kernels, so
the guarded quantity is bytes, not seconds.
"""

import numpy as np
import pytest

from conftest import BENCH_WORKERS
from repro.core.leaflet import leaflet_broadcast_1d
from repro.core.psa import run_psa
from repro.experiments.fig8_broadcast import data_plane_rows
from repro.frameworks import make_framework
from repro.frameworks.base import TaskFramework

CUTOFF = 15.0


@pytest.mark.parametrize("plane", ["pickle", "shm"])
def test_psa_data_plane_live(benchmark, bench_ensemble, plane):
    """PSA on the dasklite substrate under each data plane."""
    fw = make_framework("dasklite", executor="threads", workers=BENCH_WORKERS,
                        data_plane=plane)

    def run():
        _matrix, report = run_psa(bench_ensemble, fw, n_tasks=8)
        return report

    report = benchmark(run)
    assert report.parameters["data_plane"] == plane
    if plane == "shm":
        assert report.metrics.bytes_shared > 0
    fw.close()


@pytest.mark.parametrize("plane", ["pickle", "shm"])
def test_broadcast_data_plane_live(benchmark, bench_bilayer, plane):
    """Leaflet approach 1 broadcast volume under each data plane."""
    positions, _ = bench_bilayer
    fw = make_framework("sparklite", executor="threads", workers=BENCH_WORKERS,
                        data_plane=plane)

    def run():
        _result, report = leaflet_broadcast_1d(positions, CUTOFF, fw, n_tasks=16)
        return report

    report = benchmark(run)
    if plane == "shm":
        assert report.metrics.bytes_broadcast < positions.nbytes
        assert report.metrics.bytes_shared >= positions.nbytes
    else:
        assert report.metrics.bytes_broadcast >= positions.nbytes
    fw.close()


def test_shm_executor_psa_round_trip(benchmark, bench_ensemble):
    """Real cross-process zero copy: SharedMemoryExecutor vs ProcessExecutor."""
    fw_shm = TaskFramework(executor="shm", workers=2, data_plane="shm")
    fw_process = TaskFramework(executor="processes", workers=2)

    def run():
        _matrix, report = run_psa(bench_ensemble, fw_shm, n_tasks=4)
        return report

    report = benchmark(run)
    matrix_p, report_p = run_psa(bench_ensemble, fw_process, n_tasks=4)
    matrix_s, _ = run_psa(bench_ensemble, fw_shm, n_tasks=4)
    assert np.allclose(matrix_p.values, matrix_s.values)
    assert report.metrics.bytes_pickled < report_p.metrics.bytes_pickled
    fw_shm.close()
    fw_process.close()


def test_fig8_data_plane_extension_shape(benchmark):
    """The fig8 extension reports a strict moved-bytes reduction everywhere."""
    rows = benchmark(lambda: data_plane_rows(n_atoms=800, workers=BENCH_WORKERS,
                                             n_tasks=8))
    for row in rows:
        assert row["bytes_moved_shm"] < row["bytes_moved_pickle"]
        assert row["moved_reduction"] > 10.0  # refs are orders of magnitude smaller
