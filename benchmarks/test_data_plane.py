"""Data-plane ablation — pickle vs shared-memory payloads.

The paper blames serialization for most of the gap between the Python
frameworks and MPI; the shm data plane removes it.  These benchmarks run
the identical workload on both planes and assert the accounting the fig8
extension reports: the shm plane moves strictly fewer bytes while the
results stay bit-identical.  Noise-aware assertions only — wall-clock
wins at laptop scale are within scheduler jitter for small kernels, so
the guarded quantity is bytes, not seconds.

The exception is the spill pipeline: file writes of multi-megabyte
blocks are far above timer noise, so the async-vs-sync comparison *is*
asserted in seconds — as a ``repro.bench`` distribution comparison,
never a single-run ratio: both stall metrics are sampled N times and
the >=2x floor is gated on ``median(stall reduction) - k*MAD``.  The
full distribution record is written to ``BENCH_spill.json`` and, when
``REPRO_BENCH_HISTORY=1``, appended to ``BENCH_history.jsonl``.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_WORKERS
from repro.bench import speedup_samples
from repro.core.leaflet import leaflet_broadcast_1d
from repro.core.psa import run_psa
from repro.experiments.fig8_broadcast import data_plane_rows
from repro.frameworks import make_framework
from repro.frameworks.base import TaskFramework
from repro.frameworks.shm import SharedMemoryStore

CUTOFF = 15.0
SPILL_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_spill.json"
SPILL_SUITE = "spill"

_SPILL_RECORDS: list = []


@pytest.mark.parametrize("plane", ["pickle", "shm"])
def test_psa_data_plane_live(benchmark, bench_ensemble, plane):
    """PSA on the dasklite substrate under each data plane."""
    fw = make_framework("dasklite", executor="threads", workers=BENCH_WORKERS,
                        data_plane=plane)

    def run():
        _matrix, report = run_psa(bench_ensemble, fw, n_tasks=8)
        return report

    report = benchmark(run)
    assert report.parameters["data_plane"] == plane
    if plane == "shm":
        assert report.metrics.bytes_shared > 0
    fw.close()


@pytest.mark.parametrize("plane", ["pickle", "shm"])
def test_broadcast_data_plane_live(benchmark, bench_bilayer, plane):
    """Leaflet approach 1 broadcast volume under each data plane."""
    positions, _ = bench_bilayer
    fw = make_framework("sparklite", executor="threads", workers=BENCH_WORKERS,
                        data_plane=plane)

    def run():
        _result, report = leaflet_broadcast_1d(positions, CUTOFF, fw, n_tasks=16)
        return report

    report = benchmark(run)
    if plane == "shm":
        assert report.metrics.bytes_broadcast < positions.nbytes
        assert report.metrics.bytes_shared >= positions.nbytes
    else:
        assert report.metrics.bytes_broadcast >= positions.nbytes
    fw.close()


def test_shm_executor_psa_round_trip(benchmark, bench_ensemble):
    """Real cross-process zero copy: SharedMemoryExecutor vs ProcessExecutor."""
    fw_shm = TaskFramework(executor="shm", workers=2, data_plane="shm")
    fw_process = TaskFramework(executor="processes", workers=2)

    def run():
        _matrix, report = run_psa(bench_ensemble, fw_shm, n_tasks=4)
        return report

    report = benchmark(run)
    matrix_p, report_p = run_psa(bench_ensemble, fw_process, n_tasks=4)
    matrix_s, _ = run_psa(bench_ensemble, fw_shm, n_tasks=4)
    assert np.allclose(matrix_p.values, matrix_s.values)
    assert report.metrics.bytes_pickled < report_p.metrics.bytes_pickled
    fw_shm.close()
    fw_process.close()


def test_fig8_data_plane_extension_shape(benchmark):
    """The fig8 extension reports a strict moved-bytes reduction everywhere."""
    rows = benchmark(lambda: data_plane_rows(n_atoms=800, workers=BENCH_WORKERS,
                                             n_tasks=8))
    for row in rows:
        assert row["bytes_moved_shm"] < row["bytes_moved_pickle"]
        assert row["moved_reduction"] > 10.0  # refs are orders of magnitude smaller


def _fill_over_capacity(spill_async: bool, blocks, capacity: int,
                        queue_depth: int):
    """Put every block into an over-capacity store; measure where time went.

    Returns ``(put_wall, spill_wait, spill_hidden, bytes_spilled)``:
    total wall clock of the put loop, the store's hot-path stall, the
    background-writer seconds, and the spilled volume.  Resolution of
    every ref is verified bit-identical before the store is torn down.
    """
    store = SharedMemoryStore(capacity_bytes=capacity, spill_async=spill_async,
                              spill_queue_depth=queue_depth)
    try:
        refs = []
        put_wall = 0.0
        for block in blocks:
            start = time.perf_counter()
            refs.append(store.put(block, dedup=False))
            put_wall += time.perf_counter() - start
        store.flush_spill()
        for block, ref in zip(blocks, refs):
            assert np.array_equal(ref.resolve(), block)
        return (put_wall, store.spill_wait_seconds,
                store.spill_hidden_seconds, store.bytes_spilled)
    finally:
        store.cleanup()


def test_async_spill_reduces_put_path_stall(bench_sampler, bench_gate,
                                            bench_history):
    """PR 4 acceptance: write-behind spilling must at least halve the
    put-path stall on an over-capacity workload, bit-identically.

    4 MiB blocks keep the file writes far above timer noise; the queue
    is deeper than the spill count, so the async stall measures the
    enqueue path itself rather than disk backpressure.  Both stall
    metrics are sampled as full distributions and the floor is gated
    on ``median(reduction) - k*MAD > 2``.
    """
    rng = np.random.default_rng(1234)
    blocks = [rng.random((512, 1024)) for _ in range(10)]       # 4 MiB each
    capacity = 2 * blocks[0].nbytes                              # 8 MiB store
    runs: dict = {False: [], True: []}

    def one_run(spill_async: bool) -> float:
        result = _fill_over_capacity(spill_async, blocks, capacity,
                                     queue_depth=16)
        runs[spill_async].append(result)
        return result[1]                             # the spill-wait stall

    # sequential, non-interleaved: the whole sync distribution first,
    # then the whole async distribution (interleaving them would let
    # one pipeline's page-cache state pollute the other's samples)
    sync_dist = bench_sampler.sample_values(
        lambda: one_run(False), label="sync spill wait")
    async_dist = bench_sampler.sample_values(
        lambda: one_run(True), label="async spill wait")

    spilled = {int(r[3]) for results in runs.values() for r in results}
    assert spilled == {next(iter(spilled))}          # identical eviction decisions
    assert next(iter(spilled)) > 0
    assert sync_dist.min > 0.0
    hidden = [r[2] for r in runs[True]]
    assert min(hidden) > 0.0                         # the writes really ran behind

    # the acceptance floor: >= 2x less hot-path stall (measured: ~100x),
    # variance-gated on the pairwise stall-reduction distribution
    reductions = speedup_samples(sync_dist.samples, async_dist.samples)
    verdict = bench_gate.check_speedup(sync_dist, async_dist, floor=2.0)
    assert verdict.passed, verdict.reason

    stats = bench_gate.speedup_stats(sync_dist, async_dist)
    workload = (f"{len(blocks)} x {blocks[0].nbytes} B blocks into "
                f"{capacity} B store")
    _SPILL_RECORDS.append({
        "workload": workload,
        "gating": True,
        "floor": 2.0,
        "bytes_spilled": next(iter(spilled)),
        "sync_put_wall_s": min(r[0] for r in runs[False]),
        "async_put_wall_s": min(r[0] for r in runs[True]),
        "async_spill_hidden_s_median": float(np.median(hidden)),
        "stall_reduction_median": stats["speedup_median"],
        "stall_reduction_mad": stats["speedup_mad"],
        "stall_reduction_lower_bound": stats["speedup_lower_bound"],
        "n_reduction_samples": len(reductions),
        "gate_passed": verdict.passed,
        "gate_reason": verdict.reason,
        "sync_spill_wait": sync_dist.to_dict(),
        "async_spill_wait": async_dist.to_dict(),
    })
    if bench_history is not None:
        bench_history.append(SPILL_SUITE, "async_spill_put_stall", workload,
                             {"sync": sync_dist, "async": async_dist},
                             stats={**stats, "floor": 2.0, "gating": True,
                                    "gate_passed": verdict.passed})


@pytest.fixture(scope="module", autouse=True)
def write_spill_record():
    """Persist the spill comparison, even on partial runs."""
    yield
    if _SPILL_RECORDS:
        SPILL_RECORD_PATH.write_text(json.dumps({
            "suite": "spill pipeline: synchronous vs write-behind",
            "protocol": {
                "statistic": "median of pairwise stall-reduction samples",
                "gate": "median - k*MAD > floor",
            },
            "rows": _SPILL_RECORDS,
        }, indent=2) + "\n")
