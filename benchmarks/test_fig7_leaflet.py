"""Figure 7 — Leaflet Finder: four approaches x three frameworks.

Live benchmark: each (framework, approach) cell on a laptop-scale bilayer,
with correctness asserted against the serial reference.  Modeled
assertions: the published orderings (broadcast worst, parallel-cc beats
task-2d, tree-search wins for the big systems, MPI fastest, feasibility
annotations).
"""

import pytest

from conftest import framework
from repro.core import leaflet_serial, run_leaflet_finder
from repro.experiments import fig7_leaflet_approaches

CUTOFF = 15.0
APPROACHES = ("broadcast-1d", "task-2d", "parallel-cc", "tree-search")


@pytest.mark.parametrize("name", ["sparklite", "dasklite", "mpilite"])
@pytest.mark.parametrize("approach", APPROACHES)
def test_fig7_leaflet_live(benchmark, bench_bilayer, name, approach):
    """One Figure 7 cell at laptop scale."""
    positions, labels = bench_bilayer
    serial = leaflet_serial(positions, CUTOFF)
    fw = framework(name)

    def run():
        result, _report = run_leaflet_finder(positions, CUTOFF, fw,
                                             approach=approach, n_tasks=16)
        return result

    result = benchmark(run)
    assert result.sizes[:2] == serial.sizes[:2]
    assert result.agreement_with(labels) == 1.0
    fw.close()


def test_fig7_modeled_orderings(benchmark):
    """Paper-scale shape assertions for the full Figure 7 grid."""
    rows = benchmark(lambda: fig7_leaflet_approaches.modeled_rows(core_counts=(32, 256)))
    by = {(r["framework"], r["approach"], r["n_atoms"], r["cores"]): r for r in rows}

    # broadcast-1d is the slowest approach for Spark and Dask at every size it ran
    for fw_name in ("spark", "dask"):
        for n_atoms in (131_072, 262_144):
            bc = by[(fw_name, "broadcast-1d", n_atoms, 256)]["runtime_s"]
            for other in ("task-2d", "parallel-cc"):
                assert bc >= by[(fw_name, other, n_atoms, 256)]["runtime_s"]

    # parallel-cc improves on task-2d (the ~20% refinement)
    for fw_name in ("spark", "dask"):
        t2 = by[(fw_name, "task-2d", 524_288, 256)]["runtime_s"]
        t3 = by[(fw_name, "parallel-cc", 524_288, 256)]["runtime_s"]
        assert t3 < t2

    # tree-search loses on the smallest system, wins on the 4M system
    for fw_name in ("spark", "dask"):
        assert (by[(fw_name, "tree-search", 131_072, 32)]["runtime_s"]
                > by[(fw_name, "parallel-cc", 131_072, 32)]["runtime_s"])
        assert (by[(fw_name, "tree-search", 4_194_304, 256)]["runtime_s"]
                < by[(fw_name, "parallel-cc", 4_194_304, 256)]["runtime_s"])

    # MPI is fastest for the cdist-based approaches
    for approach in ("task-2d", "parallel-cc"):
        assert (by[("mpi", approach, 262_144, 256)]["runtime_s"]
                <= by[("spark", approach, 262_144, 256)]["runtime_s"])

    # feasibility annotations match section 4.3
    assert not by[("dask", "broadcast-1d", 524_288, 256)]["feasible"]
    assert not by[("spark", "task-2d", 4_194_304, 256)]["feasible"]
    assert by[("spark", "parallel-cc", 4_194_304, 256)]["feasible"]
    assert by[("dask", "tree-search", 4_194_304, 256)]["feasible"]

    # MPI speedups are the highest of the three frameworks (closest to linear)
    for approach in ("parallel-cc",):
        assert (by[("mpi", approach, 524_288, 256)]["speedup"]
                >= by[("dask", approach, 524_288, 256)]["speedup"] * 0.9)


def test_fig7_live_shuffle_reduction(benchmark, bench_bilayer):
    """Approach 3 really does shuffle fewer bytes than approach 2 (live metrics)."""
    positions, _ = bench_bilayer
    fw = framework("sparklite")

    def run():
        _r2, rep2 = run_leaflet_finder(positions, CUTOFF, fw, approach="task-2d", n_tasks=16)
        _r3, rep3 = run_leaflet_finder(positions, CUTOFF, fw, approach="parallel-cc", n_tasks=16)
        return rep2.metrics.bytes_shuffled, rep3.metrics.bytes_shuffled

    edge_bytes, component_bytes = benchmark(run)
    assert component_bytes < edge_bytes
    fw.close()
