"""Kernel-engine microbenchmarks: distributions, not point estimates.

Times every dual-implementation kernel on the workloads named by the
acceptance criteria — neighbor edge discovery on a 20k-particle bilayer,
connected components on a 100k-edge graph, the early-break Hausdorff on
256-frame trajectory pairs, the batched Kabsch path — via the
``repro.bench`` sampling protocol: N warm samples per side after
explicit warmup, calibrated overhead subtracted, sequential execution
pinned by the conftest.

Every floor is variance-gated: the test passes only if
``median(speedup) - k*MAD(speedup) > floor``, so a verdict cannot flip
on scheduler noise.  Kernels whose measured advantage is statistically
indistinguishable from 1x (``count_within``, ``grid_self_join``) are
non-gating informational rows: their distributions are recorded, their
correctness is still asserted bit-identically, but no perf assert can
fail on them.

The full distribution table is written to ``BENCH_kernels.json`` and,
when ``REPRO_BENCH_HISTORY=1``, appended to ``BENCH_history.jsonl`` so
future PRs inherit a baseline trajectory.

Run with ``pytest benchmarks/test_kernels.py -m bench``; CI lowers
``REPRO_BENCH_SAMPLES`` for the smoke job, while the committed records
use the full >=20-sample protocol.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_K
from repro.analysis.graph import connected_components, merge_component_sets
from repro.analysis.hausdorff import hausdorff_earlybreak
from repro.analysis.neighbors import BallTree, GridNeighborSearch, radius_edges
from repro.analysis.rmsd import kabsch_rmsd, rmsd_trajectory
from repro.bench import Distribution, distinguishable, speedup_samples
from repro.trajectory import BilayerSpec, EnsembleSpec, make_bilayer, make_clustered_ensemble

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
SUITE = "kernels"
CUTOFF = 15.0

_RECORDS: list[dict] = []


def record(gate, history, kernel: str, workload: str,
           reference: Distribution, vectorized: Distribution,
           floor: float, gating: bool = True, **extra):
    """Record one reference-vs-vectorized row and return its gate verdict.

    The row persists both full distributions plus the pairwise-speedup
    summary; non-gating rows still compute the verdict (informational)
    but callers must not assert on it.
    """
    stats = gate.speedup_stats(reference, vectorized)
    ratios = speedup_samples(reference.samples, vectorized.samples)
    stats["distinguishable_from_1x"] = distinguishable(ratios, 1.0, k=gate.k)
    verdict = gate.check_speedup(reference, vectorized, floor, gating=gating)
    row = {
        "kernel": kernel,
        "workload": workload,
        "gating": gating,
        "floor": floor,
        **stats,
        "gate_passed": verdict.passed,
        "gate_margin": verdict.margin,
        "gate_reason": verdict.reason,
        "reference": reference.to_dict(),
        "vectorized": vectorized.to_dict(),
        **extra,
    }
    _RECORDS.append(row)
    if history is not None:
        history.append(SUITE, kernel, workload,
                       {"reference": reference, "vectorized": vectorized},
                       stats={**stats, "floor": floor, "gating": gating,
                              "gate_passed": verdict.passed},
                       meta=extra or None)
    return verdict


@pytest.fixture(scope="module")
def bilayer_20k():
    """The acceptance-criteria workload: a 20k-particle bilayer."""
    positions, _ = make_bilayer(BilayerSpec(n_atoms=20_000, seed=3))
    return positions


@pytest.fixture(scope="module")
def brute_edges_dist(bench_sampler, bilayer_20k):
    """One shared distribution of the dense reference scan.

    The brute-force O(n^2) edge scan is by far the most expensive side
    of the neighbor comparisons; sampling it once and comparing both
    tree and grid candidates against the same distribution keeps the
    >=20-sample protocol affordable.
    """
    return bench_sampler.sample(
        lambda: radius_edges(bilayer_20k, CUTOFF, method="brute"),
        label="radius_edges[brute] bilayer n=20000")


@pytest.fixture(scope="module")
def trajectory_pairs_256():
    """256-frame trajectory pairs from a clustered ensemble."""
    ensemble = make_clustered_ensemble(
        EnsembleSpec(n_trajectories=4, n_frames=256, n_atoms=64, seed=7))
    arrays = ensemble.as_arrays()
    return [(arrays[i], arrays[i + 1]) for i in range(3)]


class TestNeighborKernels:
    @pytest.mark.parametrize("method", ["balltree", "grid"])
    def test_radius_edges_vectorized_vs_brute(self, bench_sampler, bench_gate,
                                              bench_history, bilayer_20k,
                                              brute_edges_dist, method):
        """Tree/grid edge discovery: variance-gated >=10x over the dense
        reference scan, bit-identical edges."""
        vec_dist = bench_sampler.sample(
            lambda: radius_edges(bilayer_20k, CUTOFF, method=method),
            label=f"radius_edges[{method}] bilayer n=20000")
        edges = radius_edges(bilayer_20k, CUTOFF, method=method)
        assert np.array_equal(edges, radius_edges(bilayer_20k, CUTOFF, method="brute"))
        verdict = record(bench_gate, bench_history, f"radius_edges[{method}]",
                         "bilayer n=20000 cutoff=15", brute_edges_dist, vec_dist,
                         floor=10.0, n_edges=int(edges.shape[0]))
        assert verdict.passed, verdict.reason

    def test_balltree_count_within(self, bench_sampler, bench_gate, bench_history,
                                   bilayer_20k):
        """Counting during traversal vs materializing the index lists.

        Informational (non-gating): the measured advantage (~1.2x) is
        inside the noise band at this scale, so the row records the
        distributions without any perf assert; only bit-identical
        counts are enforced.
        """
        tree = BallTree(bilayer_20k)
        queries = bilayer_20k[:5000]
        lists_dist = bench_sampler.sample(
            lambda: np.array([len(ix) for ix in tree.query_radius(queries, CUTOFF)]),
            label="count_within[lists] bilayer n=20000")
        count_dist = bench_sampler.sample(
            lambda: tree.count_within(queries, CUTOFF),
            label="count_within[traversal] bilayer n=20000")
        counts = tree.count_within(queries, CUTOFF)
        assert np.array_equal(
            counts, np.array([len(ix) for ix in tree.query_radius(queries, CUTOFF)]))
        record(bench_gate, bench_history, "count_within",
               "bilayer n=20000, 5000 queries", lists_dist, count_dist,
               floor=1.0, gating=False)

    def test_grid_self_join(self, bench_sampler, bench_gate, bench_history,
                            bilayer_20k):
        """Half-stencil self-join vs the full-stencil query path.

        Informational (non-gating): the measured advantage (~1.8x)
        overlaps the noise band, so no perf assert; the distributions
        are recorded for the trend line.
        """
        grid = GridNeighborSearch(bilayer_20k, CUTOFF)
        full_dist = bench_sampler.sample(
            lambda: grid.query_radius_pairs(bilayer_20k, CUTOFF),
            label="grid_self_join[full-stencil] bilayer n=20000")
        half_dist = bench_sampler.sample(
            lambda: grid.self_join_pairs(CUTOFF),
            label="grid_self_join[half-stencil] bilayer n=20000")
        record(bench_gate, bench_history, "grid_self_join",
               "bilayer n=20000 cutoff=15", full_dist, half_dist,
               floor=1.0, gating=False)


class TestGraphKernels:
    def test_connected_components_100k_edges(self, bench_sampler, bench_gate,
                                             bench_history):
        """Array-native components: no per-edge Python unions, same output."""
        rng = np.random.default_rng(2018)
        n = 30_000
        edges = rng.integers(0, n, size=(100_000, 2))
        ref_dist = bench_sampler.sample(
            lambda: connected_components(edges, n, method="reference"),
            label="connected_components[reference] n=30000 e=100000")
        vec_dist = bench_sampler.sample(
            lambda: connected_components(edges, n, method="vectorized"),
            label="connected_components[vectorized] n=30000 e=100000")
        vec = connected_components(edges, n, method="vectorized")
        ref = connected_components(edges, n, method="reference")
        assert len(vec) == len(ref)
        assert all(np.array_equal(a, b) for a, b in zip(vec, ref))
        verdict = record(bench_gate, bench_history, "connected_components",
                         "random graph n=30000 e=100000", ref_dist, vec_dist,
                         floor=3.0)
        assert verdict.passed, verdict.reason

    def test_merge_component_sets(self, bench_sampler, bench_gate, bench_history):
        """The unique-based membership relabeling beats the dict merge."""
        rng = np.random.default_rng(11)
        n = 20_000
        edges = rng.integers(0, n, size=(60_000, 2))
        partial_sets = [
            [c for c in connected_components(chunk, n, include_singletons=False)]
            for chunk in np.array_split(edges, 16)
        ]
        ref_dist = bench_sampler.sample(
            lambda: merge_component_sets(partial_sets, method="reference"),
            label="merge_component_sets[reference] 16 partials")
        vec_dist = bench_sampler.sample(
            lambda: merge_component_sets(partial_sets, method="vectorized"),
            label="merge_component_sets[vectorized] 16 partials")
        vec = merge_component_sets(partial_sets, method="vectorized")
        ref = merge_component_sets(partial_sets, method="reference")
        assert all(np.array_equal(a, b) for a, b in zip(vec, ref))
        verdict = record(bench_gate, bench_history, "merge_component_sets",
                         "16 partials of 60k-edge graph", ref_dist, vec_dist,
                         floor=2.0)
        assert verdict.passed, verdict.reason


class TestHausdorffKernels:
    def test_earlybreak_256_frames(self, bench_sampler, bench_gate, bench_history,
                                   trajectory_pairs_256):
        """Blockwise early-break: variance-gated >=5x, equal floats."""
        pairs = trajectory_pairs_256

        def run(method):
            return [hausdorff_earlybreak(a, b, method=method) for a, b in pairs]

        ref_dist = bench_sampler.sample(
            lambda: run("reference"),
            label="hausdorff_earlybreak[reference] 3 pairs 256 frames")
        vec_dist = bench_sampler.sample(
            lambda: run("vectorized"),
            label="hausdorff_earlybreak[vectorized] 3 pairs 256 frames")
        assert run("vectorized") == run("reference")   # exactly the same distances
        verdict = record(bench_gate, bench_history, "hausdorff_earlybreak",
                         "3 pairs, 256 frames x 64 atoms", ref_dist, vec_dist,
                         floor=5.0)
        assert verdict.passed, verdict.reason


class TestRmsdKernels:
    def test_batched_kabsch(self, bench_sampler, bench_gate, bench_history):
        """Stacked-covariance Kabsch beats the per-frame loop."""
        rng = np.random.default_rng(5)
        traj = rng.normal(size=(1000, 64, 3))
        reference = rng.normal(size=(64, 3))
        ref_dist = bench_sampler.sample(
            lambda: np.array([kabsch_rmsd(f, reference) for f in traj]),
            label="kabsch[per-frame loop] 1000 frames")
        vec_dist = bench_sampler.sample(
            lambda: rmsd_trajectory(traj, reference=reference, superposition=True),
            label="kabsch[batched] 1000 frames")
        batched = rmsd_trajectory(traj, reference=reference, superposition=True)
        looped = np.array([kabsch_rmsd(f, reference) for f in traj])
        assert np.allclose(batched, looped, rtol=1e-9, atol=1e-12)
        verdict = record(bench_gate, bench_history, "rmsd_trajectory[kabsch]",
                         "1000 frames x 64 atoms", ref_dist, vec_dist,
                         floor=2.0)
        assert verdict.passed, verdict.reason


@pytest.fixture(scope="module", autouse=True)
def write_record():
    """Persist everything the module recorded, even on partial runs."""
    yield
    if _RECORDS:
        RECORD_PATH.write_text(json.dumps({
            "suite": "kernel-engine reference vs vectorized",
            "protocol": {
                "statistic": "median of pairwise speedup samples",
                "gate": f"median - {BENCH_K:g}*MAD > floor (gating rows only)",
                "k": BENCH_K,
            },
            "rows": _RECORDS,
        }, indent=2) + "\n")
