"""Kernel-engine microbenchmarks: reference vs vectorized, with a record.

Times every dual-implementation kernel on the workloads named by the
acceptance criteria — neighbor edge discovery on a 20k-particle bilayer,
connected components on a 100k-edge graph, the early-break Hausdorff on
256-frame trajectory pairs, the batched Kabsch path — asserts the
speedups the vectorized engine must deliver, and writes the full table
to ``BENCH_kernels.json`` next to this file so future PRs have a perf
trajectory to compare against.

Run with ``pytest benchmarks/test_kernels.py -m bench`` (the timing
loops are self-contained, so ``--benchmark-disable`` does not lose the
JSON record).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.graph import connected_components, merge_component_sets
from repro.analysis.hausdorff import hausdorff_earlybreak
from repro.analysis.neighbors import BallTree, GridNeighborSearch, radius_edges
from repro.analysis.rmsd import kabsch_rmsd, rmsd_trajectory
from repro.trajectory import BilayerSpec, EnsembleSpec, make_bilayer, make_clustered_ensemble

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
CUTOFF = 15.0

_RECORDS: list[dict] = []


def best_of(fn, repeats: int = 3) -> float:
    """Best wall time of ``repeats`` calls (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record(kernel: str, workload: str, reference_s: float, vectorized_s: float,
           **extra) -> float:
    """Append one reference-vs-vectorized row and return the speedup."""
    speedup = reference_s / vectorized_s if vectorized_s > 0 else float("inf")
    _RECORDS.append({
        "kernel": kernel,
        "workload": workload,
        "reference_s": reference_s,
        "vectorized_s": vectorized_s,
        "speedup": speedup,
        **extra,
    })
    return speedup


@pytest.fixture(scope="module")
def bilayer_20k():
    """The acceptance-criteria workload: a 20k-particle bilayer."""
    positions, _ = make_bilayer(BilayerSpec(n_atoms=20_000, seed=3))
    return positions


@pytest.fixture(scope="module")
def trajectory_pairs_256():
    """256-frame trajectory pairs from a clustered ensemble."""
    ensemble = make_clustered_ensemble(
        EnsembleSpec(n_trajectories=4, n_frames=256, n_atoms=64, seed=7))
    arrays = ensemble.as_arrays()
    return [(arrays[i], arrays[i + 1]) for i in range(3)]


class TestNeighborKernels:
    @pytest.mark.parametrize("method", ["balltree", "grid"])
    def test_radius_edges_vectorized_vs_brute(self, bilayer_20k, method):
        """Tree/grid edge discovery: >=10x over the dense reference scan,
        bit-identical edges."""
        brute_s = best_of(lambda: radius_edges(bilayer_20k, CUTOFF, method="brute"),
                          repeats=2)
        vec_s = best_of(lambda: radius_edges(bilayer_20k, CUTOFF, method=method))
        edges = radius_edges(bilayer_20k, CUTOFF, method=method)
        assert np.array_equal(edges, radius_edges(bilayer_20k, CUTOFF, method="brute"))
        speedup = record(f"radius_edges[{method}]", "bilayer n=20000 cutoff=15",
                         brute_s, vec_s, n_edges=int(edges.shape[0]))
        assert speedup >= 10.0

    def test_balltree_count_within(self, bilayer_20k):
        """Counting during traversal beats materializing the index lists."""
        tree = BallTree(bilayer_20k)
        queries = bilayer_20k[:5000]
        lists_s = best_of(
            lambda: np.array([len(ix) for ix in tree.query_radius(queries, CUTOFF)]))
        count_s = best_of(lambda: tree.count_within(queries, CUTOFF))
        counts = tree.count_within(queries, CUTOFF)
        assert np.array_equal(
            counts, np.array([len(ix) for ix in tree.query_radius(queries, CUTOFF)]))
        record("count_within", "bilayer n=20000, 5000 queries", lists_s, count_s)
        assert count_s < lists_s

    def test_grid_self_join(self, bilayer_20k):
        """The half-stencil self-join beats the full-stencil query path."""
        grid = GridNeighborSearch(bilayer_20k, CUTOFF)
        full_s = best_of(lambda: grid.query_radius_pairs(bilayer_20k, CUTOFF))
        half_s = best_of(lambda: grid.self_join_pairs(CUTOFF))
        record("grid_self_join", "bilayer n=20000 cutoff=15", full_s, half_s)
        assert half_s < full_s


class TestGraphKernels:
    def test_connected_components_100k_edges(self):
        """Array-native components: no per-edge Python unions, same output."""
        rng = np.random.default_rng(2018)
        n = 30_000
        edges = rng.integers(0, n, size=(100_000, 2))
        ref_s = best_of(lambda: connected_components(edges, n, method="reference"),
                        repeats=2)
        vec_s = best_of(lambda: connected_components(edges, n, method="vectorized"))
        vec = connected_components(edges, n, method="vectorized")
        ref = connected_components(edges, n, method="reference")
        assert len(vec) == len(ref)
        assert all(np.array_equal(a, b) for a, b in zip(vec, ref))
        speedup = record("connected_components", "random graph n=30000 e=100000",
                         ref_s, vec_s)
        assert speedup >= 3.0

    def test_merge_component_sets(self):
        """The unique-based membership relabeling beats the dict merge."""
        rng = np.random.default_rng(11)
        n = 20_000
        edges = rng.integers(0, n, size=(60_000, 2))
        partial_sets = [
            [c for c in connected_components(chunk, n, include_singletons=False)]
            for chunk in np.array_split(edges, 16)
        ]
        ref_s = best_of(lambda: merge_component_sets(partial_sets, method="reference"),
                        repeats=2)
        vec_s = best_of(lambda: merge_component_sets(partial_sets, method="vectorized"))
        vec = merge_component_sets(partial_sets, method="vectorized")
        ref = merge_component_sets(partial_sets, method="reference")
        assert all(np.array_equal(a, b) for a, b in zip(vec, ref))
        speedup = record("merge_component_sets", "16 partials of 60k-edge graph",
                         ref_s, vec_s)
        assert speedup >= 2.0


class TestHausdorffKernels:
    def test_earlybreak_256_frames(self, trajectory_pairs_256):
        """Blockwise early-break: >=5x over the per-pair scan, equal floats."""
        pairs = trajectory_pairs_256

        def run(method):
            return [hausdorff_earlybreak(a, b, method=method) for a, b in pairs]

        ref_s = best_of(lambda: run("reference"), repeats=2)
        vec_s = best_of(lambda: run("vectorized"))
        assert run("vectorized") == run("reference")   # exactly the same distances
        speedup = record("hausdorff_earlybreak", "3 pairs, 256 frames x 64 atoms",
                         ref_s, vec_s)
        assert speedup >= 5.0


class TestRmsdKernels:
    def test_batched_kabsch(self):
        """Stacked-covariance Kabsch beats the per-frame loop."""
        rng = np.random.default_rng(5)
        traj = rng.normal(size=(1000, 64, 3))
        reference = rng.normal(size=(64, 3))
        ref_s = best_of(lambda: np.array([kabsch_rmsd(f, reference) for f in traj]),
                        repeats=2)
        vec_s = best_of(
            lambda: rmsd_trajectory(traj, reference=reference, superposition=True))
        batched = rmsd_trajectory(traj, reference=reference, superposition=True)
        looped = np.array([kabsch_rmsd(f, reference) for f in traj])
        assert np.allclose(batched, looped, rtol=1e-9, atol=1e-12)
        speedup = record("rmsd_trajectory[kabsch]", "1000 frames x 64 atoms",
                         ref_s, vec_s)
        assert speedup >= 2.0


@pytest.fixture(scope="module", autouse=True)
def write_record():
    """Persist everything the module recorded, even on partial runs."""
    yield
    if _RECORDS:
        RECORD_PATH.write_text(json.dumps({
            "suite": "kernel-engine reference vs vectorized",
            "rows": _RECORDS,
        }, indent=2) + "\n")
