"""Tables 1-3 — regeneration of the qualitative comparisons.

There is nothing to time here beyond the rendering itself; the value of
these benchmarks is asserting that the encoded tables carry the paper's
content and that the decision framework's recommendations match the
paper's conclusions (section 4.4).
"""

from repro.core.characterization import (
    DECISION_FRAMEWORK,
    FRAMEWORK_COMPARISON,
    LEAFLET_MAPREDUCE_OPERATIONS,
    recommend_framework,
)
from repro.experiments import tables


def test_table1_render(benchmark):
    text = benchmark(lambda: tables.render_table_text(1))
    assert "RADICAL-Pilot" in text and "Spark" in text and "Dask" in text
    assert FRAMEWORK_COMPARISON["Spark"]["scheduler"] == "Stage-oriented DAG"
    assert FRAMEWORK_COMPARISON["RADICAL-Pilot"]["shuffle"] == "-"


def test_table2_render(benchmark):
    text = benchmark(lambda: tables.render_table_text(2))
    assert "partial connected components" in text
    # approaches 3 and 4 shuffle O(n), approaches 1 and 2 shuffle O(E)
    assert "O(n)" in LEAFLET_MAPREDUCE_OPERATIONS["tree-search"]["shuffle"]
    assert "O(E)" in LEAFLET_MAPREDUCE_OPERATIONS["broadcast-1d"]["shuffle"]


def test_table3_render_and_conclusions(benchmark):
    text = benchmark(lambda: tables.render_table_text(3))
    assert "low_latency" in text
    # the paper's conclusions: Spark for shuffle/broadcast/caching-heavy work,
    # Dask for Python-native low-latency task work, RP for MPI/HPC task work
    assert recommend_framework({"shuffle": 1, "broadcast": 1, "caching": 1})[0][0] == "Spark"
    assert recommend_framework({"task_api": 1, "low_latency": 1, "throughput": 1})[0][0] == "Dask"
    assert recommend_framework({"mpi_hpc_tasks": 1})[0][0] == "RADICAL-Pilot"
    assert DECISION_FRAMEWORK["throughput"]["Dask"] == "++"
