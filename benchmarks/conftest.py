"""Shared fixtures and measurement protocol for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper: it benchmarks the laptop-scale live code path and prints/asserts
the paper-scale modeled series whose shape must match the published
figure.  Run with::

    pytest benchmarks/ -m bench

Measurement discipline (see ``docs/benchmarking.md``): timings flow
through :class:`repro.bench.Sampler` — distributions, not points — and
perf floors are enforced by :class:`repro.bench.RegressionGate` as
``median - k*MAD > floor``, never as raw single-run ratios.

Cache-state control is pinned here, not assumed: benchmark items are
forced into deterministic file order and any test-shuffling or
process-splitting plugin (pytest-randomly, pytest-xdist) is disabled
for bench runs, so one workload's samples are never interleaved with
another workload polluting its cache and allocator state.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import BenchHistory, RegressionGate, Sampler
from repro.frameworks import make_framework
from repro.trajectory import BilayerSpec, EnsembleSpec, make_bilayer, make_clustered_ensemble

#: worker threads used by all live benchmark runs
BENCH_WORKERS = 4

#: MAD multiplier for every perf gate in this harness
BENCH_K = 3.0

_BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = _BENCH_DIR.parent
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"


def pytest_configure(config):
    """Pin sequential, non-interleaved execution for bench runs.

    The sampling protocol assumes one workload's samples run
    back-to-back on a quiet interpreter.  Two plugins break that
    assumption if present: pytest-xdist (splits items across worker
    processes that time-share cores) and pytest-randomly (shuffles
    item order between runs, changing which workload warms the cache
    for which).  Both are disabled whenever this conftest is loaded —
    i.e. whenever benchmarks are being collected; neither is a
    dependency, so every knob is hasattr-guarded.
    """
    option = config.option
    if hasattr(option, "numprocesses") and option.numprocesses:
        option.numprocesses = 0
    if hasattr(option, "dist") and getattr(option, "dist", None) not in (None, "no"):
        option.dist = "no"
    # pytest-randomly: stop both test reordering and per-test reseeding
    if hasattr(option, "randomly_reorganize"):
        option.randomly_reorganize = False
    if hasattr(option, "randomly_reset_seed"):
        option.randomly_reset_seed = False


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench`` and pin its order.

    The ``bench`` marker lets CI (de)select the harness
    deterministically (``-m bench`` / ``-m "not bench"``).  On top of
    the plugin opt-outs in :func:`pytest_configure`, the bench items
    themselves are re-sorted into deterministic (file, definition)
    order among the positions they already occupy, so cache-state
    control survives even a plugin this conftest does not know about
    reshuffling collection.
    """
    bench_positions = []
    bench_items = []
    for index, item in enumerate(items):
        if _BENCH_DIR in Path(item.path).resolve().parents:
            item.add_marker(pytest.mark.bench)
            bench_positions.append(index)
            bench_items.append(item)
    ordered = sorted(bench_items, key=lambda it: (str(it.path), it.reportinfo()[1] or 0))
    for index, item in zip(bench_positions, ordered):
        items[index] = item


@pytest.fixture(scope="session")
def bench_sampler():
    """The session's :class:`~repro.bench.Sampler`.

    Sample counts come from ``REPRO_BENCH_SAMPLES`` /
    ``REPRO_BENCH_WARMUP`` (CI smoke lowers them; the committed BENCH
    records are regenerated with the full defaults).
    """
    return Sampler()


@pytest.fixture(scope="session")
def bench_gate():
    """The session's :class:`~repro.bench.RegressionGate` (k = BENCH_K)."""
    return RegressionGate(k=BENCH_K)


@pytest.fixture(scope="session")
def bench_history():
    """Append-mode :class:`~repro.bench.BenchHistory` at the repo root.

    Appending is opt-in via ``REPRO_BENCH_HISTORY=1`` so that casual
    local runs do not grow the committed trajectory; the CI bench
    smoke job and the record-regeneration runs set it.  Returns
    ``None`` when disabled.
    """
    if os.environ.get("REPRO_BENCH_HISTORY", "0") in ("", "0"):
        return None
    return BenchHistory(HISTORY_PATH)


@pytest.fixture(scope="session")
def bench_ensemble():
    """PSA workload: 8 trajectories x 24 frames x 64 atoms."""
    return make_clustered_ensemble(
        EnsembleSpec(n_trajectories=8, n_frames=24, n_atoms=64, n_clusters=2, seed=2018)
    )


@pytest.fixture(scope="session")
def bench_bilayer():
    """Leaflet Finder workload: 1500-particle bilayer."""
    return make_bilayer(BilayerSpec(n_atoms=1500, seed=2018))


@pytest.fixture(scope="session")
def bench_bilayer_large():
    """Larger Leaflet Finder workload for the tree-search crossover."""
    return make_bilayer(BilayerSpec(n_atoms=4000, seed=2018))


def framework(name: str):
    """A fresh framework substrate with the benchmark worker count."""
    return make_framework(name, executor="threads", workers=BENCH_WORKERS)
