"""Shared fixtures and workloads for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper: it benchmarks the laptop-scale live code path with pytest-benchmark
and prints/asserts the paper-scale modeled series whose shape must match
the published figure.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.frameworks import make_framework
from repro.trajectory import BilayerSpec, EnsembleSpec, make_bilayer, make_clustered_ensemble

#: worker threads used by all live benchmark runs
BENCH_WORKERS = 4


_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench`` so CI can (de)select
    the benchmark harness deterministically (``-m bench`` / ``-m "not bench"``).

    The hook receives the whole session's items, so filter to this
    directory before marking.
    """
    for item in items:
        if _BENCH_DIR in Path(item.path).resolve().parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_ensemble():
    """PSA workload: 8 trajectories x 24 frames x 64 atoms."""
    return make_clustered_ensemble(
        EnsembleSpec(n_trajectories=8, n_frames=24, n_atoms=64, n_clusters=2, seed=2018)
    )


@pytest.fixture(scope="session")
def bench_bilayer():
    """Leaflet Finder workload: 1500-particle bilayer."""
    return make_bilayer(BilayerSpec(n_atoms=1500, seed=2018))


@pytest.fixture(scope="session")
def bench_bilayer_large():
    """Larger Leaflet Finder workload for the tree-search crossover."""
    return make_bilayer(BilayerSpec(n_atoms=4000, seed=2018))


def framework(name: str):
    """A fresh framework substrate with the benchmark worker count."""
    return make_framework(name, executor="threads", workers=BENCH_WORKERS)
