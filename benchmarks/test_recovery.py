"""Recovery economics — journal resume vs full recompute.

Checkpointing only earns its keep if coming back from a crash is
decisively cheaper than starting over.  This benchmark populates a run
journal once, then samples two full distributions on an identical
compute-heavy PSA workload: a cold recompute (no journal) and a resume
that replays every block from the journal.  The acceptance floor is the
PR's headline number — **resume must cost less than half the
recompute** — gated as ``median(recompute/resume) - k*MAD > 2``, never
as a single-run ratio.  The workload is kernel-dominated on purpose
(Hausdorff over 192-frame x 128-atom pairs), so the gate measures journal
replay against real work rather than against harness overhead.

The full distribution record is written to ``BENCH_recovery.json`` and,
when ``REPRO_BENCH_HISTORY=1``, appended to ``BENCH_history.jsonl``.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import speedup_samples
from repro.core.api import psa
from repro.trajectory import EnsembleSpec, make_clustered_ensemble

RECOVERY_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
RECOVERY_SUITE = "recovery"
RESUME_FLOOR = 2.0          # resume < 0.5x recompute  <=>  speedup > 2

_RECOVERY_RECORDS: list = []


def _recovery_ensemble():
    """A kernel-dominated PSA workload: 6 x 192 frames x 128 atoms."""
    return make_clustered_ensemble(
        EnsembleSpec(n_trajectories=6, n_frames=192, n_atoms=128,
                     n_clusters=2, seed=2018)
    )


def test_resume_beats_recompute(bench_sampler, bench_gate, bench_history,
                                tmp_path):
    """PR 8 acceptance: a full-journal resume costs < 0.5x the recompute.

    One checkpointed run populates the journal; every resume sample then
    replays all blocks (``tasks_restored == n_tasks``, nothing
    submitted) while every recompute sample runs the kernels from
    scratch.  Bit-identical results are asserted on both paths before
    any timing is trusted.
    """
    ensemble = _recovery_ensemble()
    ckpt = tmp_path / "journal"

    reference, _ = psa(ensemble, "dasklite", executor="serial")
    _populated, seeded = psa(ensemble, "dasklite", executor="serial",
                             checkpoint_dir=str(ckpt))
    n_tasks = seeded.metrics.tasks_submitted
    assert n_tasks > 0

    restored_counts: list = []

    def recompute() -> float:
        start = time.perf_counter()
        matrix, _report = psa(ensemble, "dasklite", executor="serial")
        elapsed = time.perf_counter() - start
        assert np.array_equal(matrix.values, reference.values)
        return elapsed

    def resume() -> float:
        start = time.perf_counter()
        matrix, report = psa(ensemble, "dasklite", executor="serial",
                             checkpoint_dir=str(ckpt))
        elapsed = time.perf_counter() - start
        assert np.array_equal(matrix.values, reference.values)
        restored_counts.append(report.metrics.tasks_restored)
        assert report.metrics.tasks_restored == n_tasks
        assert report.metrics.tasks_submitted == 0
        return elapsed

    # sequential, non-interleaved: the whole recompute distribution
    # first, then the whole resume distribution (same protocol as the
    # spill benchmark — interleaving would share cache state between
    # the two pipelines being compared)
    recompute_dist = bench_sampler.sample_values(recompute, label="recompute")
    resume_dist = bench_sampler.sample_values(resume, label="journal resume")

    assert restored_counts and min(restored_counts) == n_tasks

    speedups = speedup_samples(recompute_dist.samples, resume_dist.samples)
    verdict = bench_gate.check_speedup(recompute_dist, resume_dist,
                                       floor=RESUME_FLOOR)
    assert verdict.passed, verdict.reason

    stats = bench_gate.speedup_stats(recompute_dist, resume_dist)
    workload = (f"psa[hausdorff] {n_tasks} blocks, "
                f"6 traj x 192 frames x 128 atoms")
    _RECOVERY_RECORDS.append({
        "workload": workload,
        "gating": True,
        "floor": RESUME_FLOOR,
        "n_tasks": int(n_tasks),
        "resume_speedup_median": stats["speedup_median"],
        "resume_speedup_mad": stats["speedup_mad"],
        "resume_speedup_lower_bound": stats["speedup_lower_bound"],
        "n_speedup_samples": len(speedups),
        "gate_passed": verdict.passed,
        "gate_reason": verdict.reason,
        "recompute": recompute_dist.to_dict(),
        "resume": resume_dist.to_dict(),
    })
    if bench_history is not None:
        bench_history.append(RECOVERY_SUITE, "journal_resume_vs_recompute",
                             workload,
                             {"recompute": recompute_dist,
                              "resume": resume_dist},
                             stats={**stats, "floor": RESUME_FLOOR,
                                    "gating": True,
                                    "gate_passed": verdict.passed})


@pytest.fixture(scope="module", autouse=True)
def write_recovery_record():
    """Persist the recovery comparison, even on partial runs."""
    yield
    if _RECOVERY_RECORDS:
        RECOVERY_RECORD_PATH.write_text(json.dumps({
            "suite": "recovery: journal resume vs full recompute",
            "protocol": {
                "statistic": "median of pairwise recompute/resume samples",
                "gate": "median - k*MAD > floor",
            },
            "rows": _RECOVERY_RECORDS,
        }, indent=2) + "\n")
