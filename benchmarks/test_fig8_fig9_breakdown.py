"""Figures 8 and 9 — broadcast breakdown and RADICAL-Pilot overheads.

Figure 8: runtime + broadcast time of Leaflet Finder approach 1.
Figure 9: approach 2 on RADICAL-Pilot, where per-unit overheads dominate.
"""

import pytest

from conftest import framework
from repro.core.leaflet import leaflet_broadcast_1d, leaflet_task_2d
from repro.experiments import fig8_broadcast, fig9_rp_leaflet
from repro.frameworks.pilot import PilotFramework

CUTOFF = 15.0


@pytest.mark.parametrize("name", ["sparklite", "dasklite", "mpilite"])
def test_fig8_broadcast_approach_live(benchmark, bench_bilayer, name):
    """Approach 1 (broadcast + 1-D) on each substrate, laptop scale."""
    positions, _ = bench_bilayer
    fw = framework(name)

    def run():
        _result, report = leaflet_broadcast_1d(positions, CUTOFF, fw, n_tasks=16)
        return report

    report = benchmark(run)
    assert report.metrics.bytes_broadcast > 0
    assert "phase_broadcast_s" in report.parameters
    fw.close()


def test_fig8_modeled_breakdown_shape(benchmark):
    """Broadcast fraction: Dask >> Spark, MPI smallest; MPI bcast grows with nodes."""
    rows = benchmark(lambda: fig8_broadcast.modeled_rows(atom_counts=(131_072, 262_144)))
    by = {(r["framework"], r["n_atoms"], r["cores"]): r for r in rows}
    for n_atoms in (131_072, 262_144):
        dask_frac = by[("dask", n_atoms, 256)]["broadcast_fraction"]
        spark_frac = by[("spark", n_atoms, 256)]["broadcast_fraction"]
        mpi_frac = by[("mpi", n_atoms, 256)]["broadcast_fraction"]
        assert dask_frac > spark_frac > mpi_frac
    # MPI broadcast time grows with the allocation, Spark/Dask stay ~flat
    mpi_growth = (by[("mpi", 262_144, 256)]["broadcast_s"]
                  / by[("mpi", 262_144, 32)]["broadcast_s"])
    spark_growth = (by[("spark", 262_144, 256)]["broadcast_s"]
                    / by[("spark", 262_144, 32)]["broadcast_s"])
    assert mpi_growth > spark_growth


def test_fig9_pilot_overheads_live(benchmark, bench_bilayer):
    """Approach 2 on the pilot substrate with a non-zero DB latency (Figure 9)."""
    positions, _ = bench_bilayer
    fw = PilotFramework(executor="threads", workers=4, database_latency_s=0.001)

    def run():
        _result, report = leaflet_task_2d(positions, CUTOFF, fw, n_tasks=16)
        return report

    report = benchmark(run)
    db_stats = dict(report.metrics.events).get("database", {})
    assert db_stats.get("round_trips", 0) > 0
    fw.close()


def test_fig9_modeled_overhead_dominance(benchmark):
    """RP runtimes are similar across system sizes and improve with more nodes."""
    rows = benchmark(lambda: fig9_rp_leaflet.modeled_rows(core_counts=(32, 256)))
    by = {(r["n_atoms"], r["cores"]): r["runtime_s"] for r in rows}
    # similar runtime despite 4x more atoms (overhead dominated)
    assert by[(524_288, 256)] / by[(131_072, 256)] < 2.0
    # a single 32-core node is the worst configuration
    for n_atoms in (131_072, 262_144, 524_288):
        assert by[(n_atoms, 32)] > by[(n_atoms, 256)]
    # and RP is far slower than the Big Data frameworks on the same workload
    from repro.perfmodel import model_leaflet_runtime
    assert by[(131_072, 256)] > 3 * model_leaflet_runtime("dask", "task-2d",
                                                          cores=256, n_atoms=131_072)
