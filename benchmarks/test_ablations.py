"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the individual design decisions
the paper (and our reproduction) relies on:

* early-break Hausdorff vs the naive double loop (the paper cites Taha &
  Hanbury 2015 as a future optimization),
* vectorized 2D-RMSD vs the per-frame loop,
* cdist-based vs BallTree vs grid edge discovery,
* edge-list shuffle (approach 2) vs partial-component shuffle (approach 3),
* blocked vs single-GEMM 2D-RMSD memory/time trade-off.
"""

import numpy as np
import pytest

from conftest import framework
from repro.analysis.hausdorff import hausdorff, hausdorff_earlybreak, hausdorff_naive
from repro.analysis.neighbors import radius_edges
from repro.analysis.rmsd import rmsd_matrix, rmsd_matrix_blocked
from repro.core.leaflet import leaflet_parallel_cc, leaflet_task_2d

CUTOFF = 15.0


@pytest.fixture(scope="module")
def pair(bench_ensemble):
    arrays = bench_ensemble.as_arrays()
    return arrays[0], arrays[2]


class TestHausdorffAblation:
    def test_vectorized(self, benchmark, pair):
        a, b = pair
        benchmark(lambda: hausdorff(a, b))

    def test_earlybreak(self, benchmark, pair):
        a, b = pair
        value = benchmark(lambda: hausdorff_earlybreak(a, b))
        assert value == pytest.approx(hausdorff(*pair), rel=1e-9)

    def test_naive(self, benchmark, pair):
        a, b = pair
        value = benchmark(lambda: hausdorff_naive(a, b))
        assert value == pytest.approx(hausdorff(*pair), rel=1e-9)


class TestRmsdMatrixAblation:
    def test_single_gemm(self, benchmark, pair):
        a, b = pair
        benchmark(lambda: rmsd_matrix(a, b))

    def test_blocked(self, benchmark, pair):
        a, b = pair
        result = benchmark(lambda: rmsd_matrix_blocked(a, b, block=8))
        assert np.allclose(result, rmsd_matrix(a, b), atol=1e-12)


class TestEdgeDiscoveryAblation:
    @pytest.mark.parametrize("method", ["brute", "balltree", "grid"])
    def test_method(self, benchmark, bench_bilayer, method):
        positions, _ = bench_bilayer
        edges = benchmark(lambda: radius_edges(positions, CUTOFF, method=method))
        assert edges.shape[0] > 0

    def test_methods_agree(self, benchmark, bench_bilayer):
        positions, _ = bench_bilayer
        brute = set(map(tuple, benchmark(lambda: radius_edges(positions, CUTOFF, method="brute"))))
        tree = set(map(tuple, radius_edges(positions, CUTOFF, method="balltree")))
        grid = set(map(tuple, radius_edges(positions, CUTOFF, method="grid")))
        assert brute == tree == grid


class TestShuffleVolumeAblation:
    def test_edge_list_vs_partial_components(self, benchmark, bench_bilayer):
        """Approach 3's shuffle is smaller than approach 2's (paper: >50% smaller)."""
        positions, _ = bench_bilayer
        fw = framework("dasklite")

        def run():
            _r2, rep2 = leaflet_task_2d(positions, CUTOFF, fw, n_tasks=16)
            _r3, rep3 = leaflet_parallel_cc(positions, CUTOFF, fw, n_tasks=16)
            return rep2.metrics.bytes_shuffled, rep3.metrics.bytes_shuffled

        edge_bytes, component_bytes = benchmark(run)
        assert component_bytes < edge_bytes
        fw.close()
