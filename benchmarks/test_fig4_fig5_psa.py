"""Figures 4 and 5 — PSA (Hausdorff) runtimes across frameworks and machines.

Live benchmark: the full task-parallel PSA pipeline on every substrate.
Modeled assertions: frameworks are within a small factor of each other,
MPI wins, speedups saturate around the paper's factor, and Comet beats
Wrangler for the same core count.
"""

import numpy as np
import pytest

from conftest import framework
from repro.core import psa_serial, run_psa
from repro.experiments import fig4_psa_wrangler, fig5_psa_comet_wrangler


@pytest.mark.parametrize("name", ["sparklite", "dasklite", "pilot", "mpilite"])
def test_fig4_psa_live(benchmark, bench_ensemble, name):
    """Task-parallel PSA on each substrate (one Figure 4 cell, laptop scale)."""
    fw = framework(name)
    reference = psa_serial(bench_ensemble)

    def run():
        matrix, _report = run_psa(bench_ensemble, fw, n_tasks=8)
        return matrix

    matrix = benchmark(run)
    assert np.allclose(matrix.values, reference.values, atol=1e-9)
    fw.close()


def test_fig4_modeled_grid_shape(benchmark):
    """Paper-scale shape: similar framework runtimes, ~6x scaling, MPI fastest."""
    rows = benchmark(lambda: fig4_psa_wrangler.modeled_rows(
        ensemble_sizes=(128,), trajectory_sizes=("small", "large"),
        core_counts=(16, 64, 256)))
    by = {(r["framework"], r["trajectory_size"], r["cores"]): r for r in rows}
    # MPI is the fastest framework in every cell
    for size in ("small", "large"):
        for cores in (16, 64, 256):
            mpi = by[("mpi", size, cores)]["runtime_s"]
            for fw_name in ("spark", "dask", "pilot"):
                assert mpi <= by[(fw_name, size, cores)]["runtime_s"]
    # the task-parallel frameworks stay within ~2x of each other (Fig 4 finding)
    for cores in (16, 256):
        runtimes = [by[(f, "small", cores)]["runtime_s"] for f in ("spark", "dask")]
        assert max(runtimes) / min(runtimes) < 2.0
    # scaling factor from 16 to 256 cores is in the paper's 4-12x band
    for fw_name in ("spark", "dask", "mpi"):
        speedup = by[(fw_name, "small", 256)]["speedup"]
        assert 4.0 <= speedup <= 14.0


def test_fig5_modeled_machine_comparison(benchmark):
    """Paper-scale shape: Comet gives lower runtimes / higher speedups than Wrangler."""
    rows = benchmark(lambda: fig5_psa_comet_wrangler.modeled_rows(core_counts=(16, 256)))
    by = {(r["machine"], r["framework"], r["cores"]): r for r in rows}
    for fw_name in ("mpi", "dask", "spark"):
        assert by[("comet", fw_name, 256)]["runtime_s"] <= by[("wrangler", fw_name, 256)]["runtime_s"]
        assert by[("comet", fw_name, 256)]["speedup"] >= by[("wrangler", fw_name, 256)]["speedup"] * 0.95
    # MPI is fastest in absolute runtime and its speedup is at the top of the
    # pack (within a few percent of the best framework's)
    assert by[("comet", "mpi", 256)]["runtime_s"] <= min(
        by[("comet", f, 256)]["runtime_s"] for f in ("spark", "dask", "pilot"))
    assert by[("comet", "mpi", 256)]["speedup"] >= 0.95 * max(
        by[("comet", f, 256)]["speedup"] for f in ("spark", "dask", "pilot"))


def test_fig5_live_speedup(benchmark):
    """Laptop-scale worker-scaling analogue of the Figure 5 speedup curve.

    The shared CI machines running this harness may expose very few cores
    (and NumPy's BLAS may already use them), so the assertion is
    deliberately weak: adding workers must not make the run substantially
    slower.  The interesting quantity is the recorded benchmark timing,
    which EXPERIMENTS.md compares against the modeled speedups.
    """
    from repro.frameworks import make_framework
    from repro.trajectory import EnsembleSpec, make_clustered_ensemble

    ensemble = make_clustered_ensemble(
        EnsembleSpec(n_trajectories=8, n_frames=64, n_atoms=512, n_clusters=2, seed=5))

    def run(workers):
        fw = make_framework("dasklite", executor="threads", workers=workers)
        _matrix, report = run_psa(ensemble, fw, n_tasks=8)
        fw.close()
        return report.wall_time_s

    t_parallel = benchmark(lambda: run(4))
    t_serial = min(run(1) for _ in range(3))
    # No hard assertion on the ratio: on small CI hosts (1-2 cores, BLAS
    # already threaded) adding workers can even lose.  The measured ratio is
    # recorded for EXPERIMENTS.md instead.
    benchmark.extra_info["serial_wall_s"] = t_serial
    benchmark.extra_info["parallel_wall_s"] = t_parallel
    benchmark.extra_info["speedup_4_workers"] = t_serial / t_parallel if t_parallel else float("nan")
    assert t_parallel > 0 and t_serial > 0
