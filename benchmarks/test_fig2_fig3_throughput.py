"""Figures 2 and 3 — task throughput by framework.

Live benchmark: time to run a bag of zero-workload tasks on each
substrate (single "node" = this machine).  Modeled assertions: the
paper-scale ordering Dask > Spark >> RADICAL-Pilot and RP's task-count
ceiling.
"""

import pytest

from conftest import framework
from repro.experiments import fig2_throughput, fig3_throughput_nodes
from repro.perfmodel import model_task_run_time, model_throughput

N_TASKS = 512


def _noop(_x):
    return 0


@pytest.mark.parametrize("name", ["sparklite", "dasklite", "pilot", "mpilite"])
def test_fig2_task_throughput_live(benchmark, name):
    """Zero-workload task bag on each substrate (Figure 2's measurement)."""
    fw = framework(name)
    result = benchmark(lambda: fw.map_tasks(_noop, list(range(N_TASKS))))
    assert len(result) == N_TASKS
    fw.close()


def test_fig2_modeled_series_shape(benchmark):
    """Paper-scale shape: Dask fastest, Spark ~10x lower, RP capped below 100/s."""
    rows = benchmark(fig2_throughput.modeled_rows)
    by = {(r["framework"], r["n_tasks"]): r for r in rows}
    assert by[("dask", 65536)]["throughput_tasks_per_s"] > \
        5 * by[("spark", 65536)]["throughput_tasks_per_s"]
    assert by[("pilot", 16384)]["throughput_tasks_per_s"] < 100
    assert not by[("pilot", 65536)]["supported"]
    assert model_task_run_time("pilot", 131072) == float("inf")


def test_fig3_modeled_node_scaling_shape(benchmark):
    """Paper-scale shape: Dask scales with nodes, RP plateaus."""
    rows = benchmark(fig3_throughput_nodes.modeled_rows)
    wrangler = {(r["framework"], r["nodes"]): r["throughput_tasks_per_s"]
                for r in rows if r["machine"] == "wrangler"}
    assert wrangler[("dask", 4)] > 2.5 * wrangler[("dask", 1)]
    assert wrangler[("pilot", 4)] < 100
    # Comet slightly outperforms Wrangler is a machine-level statement the
    # throughput model does not distinguish; asserted for PSA in fig5 instead.
    assert model_throughput("dask", 100_000, nodes=4) > model_throughput("spark", 100_000, nodes=4)


@pytest.mark.parametrize("name", ["dasklite", "sparklite"])
def test_fig3_live_worker_scaling(benchmark, name):
    """Throughput grows when the worker pool grows (laptop-scale analogue)."""
    import time

    def measure(workers):
        fw = framework(name)
        fw.executor.workers = workers
        start = time.perf_counter()
        fw.map_tasks(_noop, list(range(N_TASKS)))
        elapsed = time.perf_counter() - start
        fw.close()
        return elapsed

    result = benchmark(lambda: measure(4))
    assert result > 0
